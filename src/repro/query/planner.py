"""Goal-directed query evaluation (the planner behind ``run_query``).

Two evaluation strategies produce the same :class:`~repro.query.model.
QueryResult` envelope:

* :func:`evaluate_generic` composes the uniform adapter primitives
  (``flows_on``/``reachable``/``what_if_link_down``/``find_loops``) —
  correct on every registered backend, including ones whose natives have
  no atom currency (``atoms``/``subgraph`` stay ``None``).
* :func:`evaluate_deltanet` / :func:`evaluate_sharded` plan against the
  live Delta-net structures directly.  The planner restricts work to the
  atom set and link subgraph the query can touch: a ``LinkDown`` query
  intersects the failed label against other labels with a run-length
  disjointness early-exit (never a per-link bitmask over the whole atom
  universe), a ``Reachable`` query materializes masks only for links its
  BFS frontier crosses, and loop sweeps for ``LinkDown(loops=True)``
  chase only the affected atoms over the affected subgraph.

Span results are computed through the same code paths the historical
per-method surface used, so ``session.query(FlowsOn(link)).spans`` is
bit-identical to the deprecated ``session.flows_on(link)``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.rules import canonical_rotation
from repro.query.model import (
    Cycle, FlowsOn, LinkDown, Loops, Query, QueryResult, QUERY_KINDS,
    Reachable, as_link,
)


def _kind(query: Query) -> str:
    kind = QUERY_KINDS.get(type(query))
    if kind is None:
        raise TypeError(f"not a Query: {query!r}")
    return kind


def _canonical(cycles) -> List[Cycle]:
    seen: Dict[Cycle, None] = {}
    for cycle in cycles:
        seen.setdefault(canonical_rotation(cycle))
    return list(seen)


def evaluate_generic(backend, query: Query) -> QueryResult:
    """Evaluate ``query`` through the uniform adapter primitives.

    Works on any object satisfying the :class:`~repro.api.registry.
    BackendAdapter` query surface.  ``LinkDown(loops=True)`` has no
    affected-subgraph notion here, so it reports every loop a full sweep
    finds — a superset of the Delta-net planners' subgraph-restricted
    answer.
    """
    kind = _kind(query)
    result = QueryResult(kind=kind, backend=getattr(backend, "name", "?"))
    if isinstance(query, FlowsOn):
        result.spans = backend.flows_on(as_link(query.link))
    elif isinstance(query, Reachable):
        result.spans = backend.reachable(query.src, query.dst)
    elif isinstance(query, LinkDown):
        result.spans = backend.what_if_link_down(as_link(query.link))
        if query.loops and result.spans:
            result.violations = _canonical(backend.find_loops())
    else:
        result.violations = _canonical(backend.find_loops())
    return result


def evaluate_deltanet(net, query: Query, backend: str = "deltanet") -> QueryResult:
    """Goal-directed evaluation against one live :class:`DeltaNet`."""
    from repro.checkers.loops import find_forwarding_loops
    from repro.checkers.reachability import reachable_atoms
    from repro.checkers.whatif import link_failure_impact
    from repro.core.atomset import atoms_to_interval_set

    kind = _kind(query)
    result = QueryResult(kind=kind, backend=backend)
    if isinstance(query, FlowsOn):
        runs = net.label.get(as_link(query.link))
        atoms = sorted(runs) if runs else []
        result.atoms = atoms
        result.spans = atoms_to_interval_set(atoms, net.atoms)
    elif isinstance(query, Reachable):
        atoms = reachable_atoms(net, query.src, query.dst)
        result.atoms = sorted(atoms)
        result.spans = atoms_to_interval_set(atoms, net.atoms)
    elif isinstance(query, LinkDown):
        impact = link_failure_impact(net, as_link(query.link),
                                     check_loops=query.loops)
        result.atoms = sorted(impact.affected_atoms)
        result.subgraph = {link: sorted(atoms)
                           for link, atoms in impact.affected_subgraph.items()}
        result.spans = impact.affected_intervals(net)
        result.violations = _canonical(loop.cycle for loop in impact.loops)
    else:
        result.violations = _canonical(
            loop.cycle for loop in find_forwarding_loops(net))
    return result


def evaluate_sharded(sharded, query: Query, backend: str = "sharded") -> QueryResult:
    """Goal-directed evaluation fanned over a ShardedDeltaNet's shards.

    Spans merge across shards; atom ids do not (each shard numbers its
    own atom universe), so ``atoms``/``subgraph`` stay ``None`` here.
    """
    from repro.checkers.reachability import reachable_atoms
    from repro.checkers.whatif import link_failure_impact
    from repro.core.atomset import atoms_to_interval_set
    from repro.core.intervals import normalize

    kind = _kind(query)
    result = QueryResult(kind=kind, backend=backend)
    if isinstance(query, FlowsOn):
        result.spans = sharded.flows_on(as_link(query.link))
    elif isinstance(query, Reachable):
        spans = []
        for net in sharded.nets:
            atoms = reachable_atoms(net, query.src, query.dst)
            spans.extend(atoms_to_interval_set(atoms, net.atoms))
        result.spans = normalize(spans)
    elif isinstance(query, LinkDown):
        link = as_link(query.link)
        result.spans = sharded.flows_on(link)
        if query.loops:
            loops = []
            for net in sharded.nets:
                impact = link_failure_impact(net, link, check_loops=True)
                loops.extend(loop.cycle for loop in impact.loops)
            result.violations = _canonical(loops)
    else:
        result.violations = _canonical(
            loop.cycle for loop in sharded.find_loops())
    return result
