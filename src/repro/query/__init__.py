"""The first-class Query API: typed queries, one result envelope.

Construct a query dataclass, hand it to
:meth:`repro.api.session.VerificationSession.query` (or a backend's
``run_query``), get back a :class:`QueryResult`::

    from repro.query import FlowsOn, LinkDown

    session.query(FlowsOn(("s1", "s2"))).spans
    session.query(LinkDown(("s1", "s2"), loops=True)).violations

This package depends only on the core structures and checkers — never
on :mod:`repro.api` — so backends and sessions can import it freely.
"""

from repro.query.model import (
    Cycle, FlowsOn, LinkDown, Loops, Query, QueryPayloadError, QueryResult,
    QUERY_KINDS, Reachable, Spans, as_link, query_from_payload,
    query_to_payload,
)
from repro.query.planner import (
    evaluate_deltanet, evaluate_generic, evaluate_sharded,
)

__all__ = [
    "Cycle",
    "FlowsOn",
    "LinkDown",
    "Loops",
    "Query",
    "QueryPayloadError",
    "QueryResult",
    "QUERY_KINDS",
    "Reachable",
    "Spans",
    "as_link",
    "evaluate_deltanet",
    "evaluate_generic",
    "evaluate_sharded",
    "query_from_payload",
    "query_to_payload",
]
