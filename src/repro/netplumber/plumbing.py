"""The plumbing graph: rules as nodes, overlap pipes as edges.

Faithful to NetPlumber's architecture at single-field granularity:

* **Pipes.**  For rules ``a`` and ``b``, a pipe ``a -> b`` exists when
  ``a`` forwards traffic to the switch where ``b`` is installed and
  their match intervals overlap.  The pipe carries the intersection.
* **Shadowing (intra-table dependency).**  Within one switch, a rule's
  *effective* match is its interval minus the union of strictly
  higher-priority overlapping rules' intervals.
* **Incremental maintenance.**  Inserting a rule adds pipes to/from it
  and updates the effective matches of lower-priority table-mates;
  removal reverses both.  Per update this touches O(R) rules; the graph
  itself can hold O(R^2) pipes — the §5 comparison point.
* **Reachability.**  A flow query pushes an interval set from a source
  switch through effective matches and pipes (depth-first, with flow
  subsumption to terminate on cycles).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.intervals import IntervalSet
from repro.core.rules import DROP, Rule

#: Shared empty set for the flow-subsumption lookups (never mutated).
_EMPTY = IntervalSet()


class Pipe:
    """A directed overlap edge between two rules."""

    __slots__ = ("from_rid", "to_rid", "carries")

    def __init__(self, from_rid: int, to_rid: int, carries: IntervalSet) -> None:
        self.from_rid = from_rid
        self.to_rid = to_rid
        self.carries = carries

    def __repr__(self) -> str:
        return f"Pipe({self.from_rid} -> {self.to_rid}, {self.carries})"


class NetPlumber:
    """Incrementally maintained plumbing graph over one match field."""

    def __init__(self, width: int = 32) -> None:
        self.width = width
        self.rules: Dict[int, Rule] = {}
        self.by_switch: Dict[object, List[int]] = {}
        self.pipes_out: Dict[int, Dict[int, Pipe]] = {}
        self.pipes_in: Dict[int, Dict[int, Pipe]] = {}
        self.effective: Dict[int, IntervalSet] = {}

    @property
    def num_rules(self) -> int:
        return len(self.rules)

    @property
    def num_pipes(self) -> int:
        return sum(len(out) for out in self.pipes_out.values())

    # -- incremental maintenance ------------------------------------------------

    def insert_rule(self, rule: Rule) -> None:
        if rule.rid in self.rules:
            raise ValueError(f"duplicate rule id {rule.rid}")
        self.rules[rule.rid] = rule
        self.by_switch.setdefault(rule.source, []).append(rule.rid)
        self.pipes_out[rule.rid] = {}
        self.pipes_in[rule.rid] = {}
        # Pipes into this rule: any rule forwarding onto this switch.
        for other in self.rules.values():
            if other.rid == rule.rid:
                continue
            if other.target == rule.source and other.overlaps(rule):
                self._add_pipe(other, rule)
            if rule.target == other.source and rule.overlaps(other):
                self._add_pipe(rule, other)
        self._refresh_table(rule.source)

    def remove_rule(self, rid: int) -> None:
        rule = self.rules.pop(rid, None)
        if rule is None:
            raise KeyError(f"unknown rule id {rid}")
        self.by_switch[rule.source].remove(rid)
        for downstream in list(self.pipes_out.pop(rid, ())):
            del self.pipes_in[downstream][rid]
        for upstream in list(self.pipes_in.pop(rid, ())):
            del self.pipes_out[upstream][rid]
        self.effective.pop(rid, None)
        self._refresh_table(rule.source)

    def _add_pipe(self, upstream: Rule, downstream: Rule) -> None:
        carries = IntervalSet([(max(upstream.lo, downstream.lo),
                                min(upstream.hi, downstream.hi))])
        pipe = Pipe(upstream.rid, downstream.rid, carries)
        self.pipes_out[upstream.rid][downstream.rid] = pipe
        self.pipes_in[downstream.rid][upstream.rid] = pipe

    def _refresh_table(self, switch: object) -> None:
        """Recompute effective (unshadowed) matches within one table."""
        rids = self.by_switch.get(switch, ())
        ordered = sorted((self.rules[rid] for rid in rids),
                         key=lambda r: r.sort_key, reverse=True)
        taken = IntervalSet()
        for rule in ordered:
            mine = IntervalSet([(rule.lo, rule.hi)])
            self.effective[rule.rid] = mine - taken
            taken = taken | mine

    # -- queries -------------------------------------------------------------------

    def effective_match(self, rid: int) -> IntervalSet:
        return self.effective.get(rid, IntervalSet())

    def reachable(self, src: object, dst: object) -> IntervalSet:
        """Packets that can flow from switch ``src`` to switch ``dst``."""
        arrived = IntervalSet()
        # seen[rid] accumulates flow already pushed through a rule so
        # cyclic plumbing terminates (flow subsumption).
        seen: Dict[int, IntervalSet] = {}
        stack: List[Tuple[int, IntervalSet]] = []
        for rid in self.by_switch.get(src, ()):
            flow = self.effective_match(rid)
            if flow:
                stack.append((rid, flow))
        while stack:
            rid, flow = stack.pop()
            already = seen.get(rid, IntervalSet())
            fresh = flow - already
            if not fresh:
                continue
            seen[rid] = already | fresh
            rule = self.rules[rid]
            if rule.target == DROP:
                continue
            if rule.target == dst:
                arrived = arrived | fresh
                # Flow continues through dst's own tables as well.
            for pipe in self.pipes_out[rid].values():
                downstream = self.rules[pipe.to_rid]
                pushed = (fresh & pipe.carries &
                          self.effective_match(pipe.to_rid))
                if pushed:
                    stack.append((pipe.to_rid, pushed))
        return arrived

    def find_loops(self) -> List[List[int]]:
        """Cycles in the plumbing graph that carry a non-empty flow.

        Flow-propagating DFS, the way NetPlumber's own loop check rides
        its flow computation: a path is extended only while some packet
        survives every pipe and effective match along it, and a cycle
        is recorded when the surviving flow returns to a rule already
        on the path — which proves a packet completes a full turn, so
        every reported cycle is feasible (no pairwise-pipe
        over-approximation).  Rooting the search at *every* rule makes
        the enumeration complete: a back-edge-only DFS reports at most
        one cycle per "done" node, so a rule sitting on two
        flow-disjoint cycles hid the second one behind whichever the
        traversal met first (a differential-fuzzer find).

        Flow subsumption (as in :meth:`reachable`) keeps the sweep
        near-linear: re-entering a rule with flow already explored
        through it is skipped, which is sound because exploring a rule
        with flow F already records every cycle a packet of F completes
        — each (rule, packet-class) pair is walked at most once overall
        instead of once per root.
        """
        loops: List[List[int]] = []
        seen: Set[Tuple[int, ...]] = set()
        path: List[int] = []
        on_path: Dict[int, int] = {}
        explored: Dict[int, IntervalSet] = {}

        def canonical(cycle: List[int]) -> Tuple[int, ...]:
            pivot = cycle.index(min(cycle))
            return tuple(cycle[pivot:] + cycle[:pivot])

        # Explicit-stack DFS: plumbing paths can be as long as the rule
        # count (a forwarding chain), far past the recursion limit.
        # Each frame holds its remaining-pipes iterator, so a frame is
        # resumed exactly where it left off after its child pops.
        for root in list(self.rules):
            root_fresh = self.effective_match(root) - \
                explored.get(root, _EMPTY)
            if not root_fresh:
                continue
            explored[root] = explored.get(root, _EMPTY) | root_fresh
            on_path[root] = 0
            path.append(root)
            stack = [(root, root_fresh,
                      iter(self.pipes_out[root].values()))]
            while stack:
                rid, flow, pipes = stack[-1]
                descended = False
                for pipe in pipes:
                    succ = pipe.to_rid
                    carried = flow & pipe.carries & \
                        self.effective_match(succ)
                    if not carried:
                        continue
                    at = on_path.get(succ)
                    if at is not None:
                        # Closing a cycle needs no fresh flow: the
                        # path's flow just survived a full turn.
                        key = canonical(path[at:])
                        if key not in seen:
                            seen.add(key)
                            loops.append(list(key))
                        continue
                    fresh = carried - explored.get(succ, _EMPTY)
                    if not fresh:
                        continue
                    explored[succ] = explored.get(succ, _EMPTY) | fresh
                    on_path[succ] = len(path)
                    path.append(succ)
                    stack.append((succ, fresh,
                                  iter(self.pipes_out[succ].values())))
                    descended = True
                    break
                if not descended:
                    stack.pop()
                    path.pop()
                    del on_path[rid]
        return loops

    def __repr__(self) -> str:
        return f"NetPlumber(rules={self.num_rules}, pipes={self.num_pipes})"
