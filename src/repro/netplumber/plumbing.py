"""The plumbing graph: rules as nodes, overlap pipes as edges.

Faithful to NetPlumber's architecture at single-field granularity:

* **Pipes.**  For rules ``a`` and ``b``, a pipe ``a -> b`` exists when
  ``a`` forwards traffic to the switch where ``b`` is installed and
  their match intervals overlap.  The pipe carries the intersection.
* **Shadowing (intra-table dependency).**  Within one switch, a rule's
  *effective* match is its interval minus the union of strictly
  higher-priority overlapping rules' intervals.
* **Incremental maintenance.**  Inserting a rule adds pipes to/from it
  and updates the effective matches of lower-priority table-mates;
  removal reverses both.  Per update this touches O(R) rules; the graph
  itself can hold O(R^2) pipes — the §5 comparison point.
* **Reachability.**  A flow query pushes an interval set from a source
  switch through effective matches and pipes (depth-first, with flow
  subsumption to terminate on cycles).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.intervals import IntervalSet
from repro.core.rules import DROP, Rule


class Pipe:
    """A directed overlap edge between two rules."""

    __slots__ = ("from_rid", "to_rid", "carries")

    def __init__(self, from_rid: int, to_rid: int, carries: IntervalSet) -> None:
        self.from_rid = from_rid
        self.to_rid = to_rid
        self.carries = carries

    def __repr__(self) -> str:
        return f"Pipe({self.from_rid} -> {self.to_rid}, {self.carries})"


class NetPlumber:
    """Incrementally maintained plumbing graph over one match field."""

    def __init__(self, width: int = 32) -> None:
        self.width = width
        self.rules: Dict[int, Rule] = {}
        self.by_switch: Dict[object, List[int]] = {}
        self.pipes_out: Dict[int, Dict[int, Pipe]] = {}
        self.pipes_in: Dict[int, Dict[int, Pipe]] = {}
        self.effective: Dict[int, IntervalSet] = {}

    @property
    def num_rules(self) -> int:
        return len(self.rules)

    @property
    def num_pipes(self) -> int:
        return sum(len(out) for out in self.pipes_out.values())

    # -- incremental maintenance ------------------------------------------------

    def insert_rule(self, rule: Rule) -> None:
        if rule.rid in self.rules:
            raise ValueError(f"duplicate rule id {rule.rid}")
        self.rules[rule.rid] = rule
        self.by_switch.setdefault(rule.source, []).append(rule.rid)
        self.pipes_out[rule.rid] = {}
        self.pipes_in[rule.rid] = {}
        # Pipes into this rule: any rule forwarding onto this switch.
        for other in self.rules.values():
            if other.rid == rule.rid:
                continue
            if other.target == rule.source and other.overlaps(rule):
                self._add_pipe(other, rule)
            if rule.target == other.source and rule.overlaps(other):
                self._add_pipe(rule, other)
        self._refresh_table(rule.source)

    def remove_rule(self, rid: int) -> None:
        rule = self.rules.pop(rid, None)
        if rule is None:
            raise KeyError(f"unknown rule id {rid}")
        self.by_switch[rule.source].remove(rid)
        for downstream in list(self.pipes_out.pop(rid, ())):
            del self.pipes_in[downstream][rid]
        for upstream in list(self.pipes_in.pop(rid, ())):
            del self.pipes_out[upstream][rid]
        self.effective.pop(rid, None)
        self._refresh_table(rule.source)

    def _add_pipe(self, upstream: Rule, downstream: Rule) -> None:
        carries = IntervalSet([(max(upstream.lo, downstream.lo),
                                min(upstream.hi, downstream.hi))])
        pipe = Pipe(upstream.rid, downstream.rid, carries)
        self.pipes_out[upstream.rid][downstream.rid] = pipe
        self.pipes_in[downstream.rid][upstream.rid] = pipe

    def _refresh_table(self, switch: object) -> None:
        """Recompute effective (unshadowed) matches within one table."""
        rids = self.by_switch.get(switch, ())
        ordered = sorted((self.rules[rid] for rid in rids),
                         key=lambda r: r.sort_key, reverse=True)
        taken = IntervalSet()
        for rule in ordered:
            mine = IntervalSet([(rule.lo, rule.hi)])
            self.effective[rule.rid] = mine - taken
            taken = taken | mine

    # -- queries -------------------------------------------------------------------

    def effective_match(self, rid: int) -> IntervalSet:
        return self.effective.get(rid, IntervalSet())

    def reachable(self, src: object, dst: object) -> IntervalSet:
        """Packets that can flow from switch ``src`` to switch ``dst``."""
        arrived = IntervalSet()
        # seen[rid] accumulates flow already pushed through a rule so
        # cyclic plumbing terminates (flow subsumption).
        seen: Dict[int, IntervalSet] = {}
        stack: List[Tuple[int, IntervalSet]] = []
        for rid in self.by_switch.get(src, ()):
            flow = self.effective_match(rid)
            if flow:
                stack.append((rid, flow))
        while stack:
            rid, flow = stack.pop()
            already = seen.get(rid, IntervalSet())
            fresh = flow - already
            if not fresh:
                continue
            seen[rid] = already | fresh
            rule = self.rules[rid]
            if rule.target == DROP:
                continue
            if rule.target == dst:
                arrived = arrived | fresh
                # Flow continues through dst's own tables as well.
            for pipe in self.pipes_out[rid].values():
                downstream = self.rules[pipe.to_rid]
                pushed = (fresh & pipe.carries &
                          self.effective_match(pipe.to_rid))
                if pushed:
                    stack.append((pipe.to_rid, pushed))
        return arrived

    def find_loops(self) -> List[List[int]]:
        """Cycles in the plumbing graph that carry a non-empty flow."""
        loops: List[List[int]] = []
        state: Dict[int, int] = {}  # 0 unseen / 1 on stack / 2 done
        path: List[int] = []

        def visit(rid: int) -> None:
            state[rid] = 1
            path.append(rid)
            for pipe in self.pipes_out[rid].values():
                succ = pipe.to_rid
                carried = pipe.carries & self.effective_match(succ) & \
                    self.effective_match(rid)
                if not carried:
                    continue
                if state.get(succ, 0) == 1:
                    cycle = path[path.index(succ):]
                    loops.append(list(cycle))
                elif state.get(succ, 0) == 0:
                    visit(succ)
            path.pop()
            state[rid] = 2

        for rid in list(self.rules):
            if state.get(rid, 0) == 0:
                visit(rid)
        return loops

    def __repr__(self) -> str:
        return f"NetPlumber(rules={self.num_rules}, pipes={self.num_pipes})"
