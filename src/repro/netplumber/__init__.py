"""A NetPlumber-style baseline: the rule-dependency plumbing graph (§5).

NetPlumber (Kazemian et al., NSDI'13) "incrementally creates a graph
that, in the worst case, consists of R^2 edges where R is the number of
rules in the network.  In contrast to NetPlumber, Delta-net maintains a
graph whose size is proportional to the number of links in the network."

This package implements a single-field NetPlumber analogue over
interval sets: nodes are rules; a *pipe* connects rule ``a`` to rule
``b`` when ``a`` forwards onto the switch ``b`` lives on and their
match intervals overlap; intra-table higher-priority rules *shadow*
lower ones.  The plumbing graph is maintained incrementally on rule
insertion/removal, and reachability flows along pipes as interval sets.
Its R^2 growth vs Delta-net's links-x-atoms labels is measured by
``benchmarks/test_ablation_netplumber.py``.
"""

from repro.netplumber.plumbing import NetPlumber, Pipe

__all__ = ["NetPlumber", "Pipe"]
