"""Run-length compressed atom sets: the edge-label representation.

Atoms are the disjoint intervals induced by rule boundaries (§3.1), and
a link's label is the union of whole rule intervals — so the atom ids on
a label cluster into *runs* of consecutive identifiers whenever ids were
allocated in address order (the common case: a batch of rules over one
prefix pool mints its boundary atoms in one left-to-right sweep).

:class:`AtomRuns` stores a label as two parallel sorted arrays of run
``starts`` and half-open run ``ends``:

* membership is one ``bisect`` — O(log runs),
* iteration, union, intersection, difference and bitmask conversion are
  linear merges over runs — O(runs), not O(atoms),
* ``add``/``discard`` at a run boundary (the incremental Algorithms 1/2
  shape: sweeps walk an interval's atoms in order) extend or trim a run
  in place; only a mid-run hit pays an O(runs) array shift.

Memory is O(runs) machine words instead of one hash-table slot (plus a
boxed int) per atom, which is where the Table 5-style label memory drop
comes from; see ``docs/performance.md`` for the measured table.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Tuple


class AtomRuns:
    """A set of non-negative atom ids as sorted half-open runs."""

    __slots__ = ("_starts", "_ends", "_count")

    def __init__(self, atoms: Iterable[int] = ()) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._count = 0
        for atom in atoms:
            self.add(atom)

    @classmethod
    def from_runs(cls, runs: Iterable[Tuple[int, int]]) -> "AtomRuns":
        """Build from ``(start, end)`` half-open pairs.

        Pairs may arrive unsorted or touching; they are normalized.
        Empty or inverted pairs are rejected.
        """
        out = cls()
        starts, ends = out._starts, out._ends
        for start, end in sorted(runs):
            if start >= end:
                raise ValueError(f"empty run [{start}:{end})")
            if start < 0:
                raise ValueError(f"negative atom id in run [{start}:{end})")
            if ends and start <= ends[-1]:
                if end > ends[-1]:
                    out._count += end - ends[-1]
                    ends[-1] = end
                continue
            starts.append(start)
            ends.append(end)
            out._count += end - start
        return out

    # -- set-like reads --------------------------------------------------------

    def __contains__(self, atom: int) -> bool:
        index = bisect_right(self._starts, atom) - 1
        return index >= 0 and atom < self._ends[index]

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self) -> Iterator[int]:
        for start, end in zip(self._starts, self._ends):
            yield from range(start, end)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AtomRuns):
            return self._starts == other._starts and self._ends == other._ends
        if isinstance(other, (set, frozenset)):
            return self._count == len(other) and all(a in other for a in self)
        return NotImplemented

    def __hash__(self) -> None:  # mutable container
        raise TypeError("AtomRuns is unhashable")

    @property
    def num_runs(self) -> int:
        return len(self._starts)

    def runs(self) -> List[Tuple[int, int]]:
        """The ``(start, end)`` half-open runs, ascending."""
        return list(zip(self._starts, self._ends))

    def copy(self) -> "AtomRuns":
        out = AtomRuns()
        out._starts = list(self._starts)
        out._ends = list(self._ends)
        out._count = self._count
        return out

    def container_bytes(self) -> int:
        """Bytes held by this container (object + run arrays).

        Excludes the atom int objects themselves — they are shared
        across containers — so the number is directly comparable with
        ``sys.getsizeof(set(...))`` of an equivalent plain set (the
        label-memory table in ``docs/performance.md``).
        """
        import sys

        return (sys.getsizeof(self) + sys.getsizeof(self._starts)
                + sys.getsizeof(self._ends))

    def to_bitmask(self) -> int:
        """The label as an int bitmask — O(runs) shifts, not O(atoms)."""
        mask = 0
        for start, end in zip(self._starts, self._ends):
            mask |= ((1 << (end - start)) - 1) << start
        return mask

    # -- single-atom updates (the Algorithms 1/2 hot path) ---------------------

    def add(self, atom: int) -> bool:
        """Insert ``atom``; returns whether membership actually changed
        (``False`` when already present) so callers maintaining derived
        state — the integrity digests — toggle only on real mutations."""
        if atom < 0:
            raise ValueError(f"negative atom id {atom}")
        starts, ends = self._starts, self._ends
        index = bisect_right(starts, atom) - 1
        if index >= 0 and atom < ends[index]:
            return False  # already inside run ``index``
        self._count += 1
        grows_left = index >= 0 and atom == ends[index]
        nxt = index + 1
        grows_right = nxt < len(starts) and atom + 1 == starts[nxt]
        if grows_left and grows_right:
            # The new atom bridges two runs into one.
            ends[index] = ends.pop(nxt)
            del starts[nxt]
        elif grows_left:
            ends[index] = atom + 1
        elif grows_right:
            starts[nxt] = atom
        else:
            starts.insert(nxt, atom)
            ends.insert(nxt, atom + 1)
        return True

    def discard(self, atom: int) -> bool:
        """Remove ``atom``; returns whether it was present (see
        :meth:`add` for why the membership delta is reported)."""
        starts, ends = self._starts, self._ends
        index = bisect_right(starts, atom) - 1
        if index < 0 or atom >= ends[index]:
            return False
        self._count -= 1
        start, end = starts[index], ends[index]
        if end - start == 1:
            del starts[index]
            del ends[index]
        elif atom == start:
            starts[index] = atom + 1
        elif atom == end - 1:
            ends[index] = atom
        else:
            # Mid-run hit: split into [start:atom) and [atom+1:end).
            ends[index] = atom
            starts.insert(index + 1, atom + 1)
            ends.insert(index + 1, end)
        return True

    # -- O(runs) bulk algebra ---------------------------------------------------

    def union(self, other: "AtomRuns") -> "AtomRuns":
        """Two-pointer linear merge — O(runs), no re-sort."""
        out = AtomRuns()
        starts, ends = out._starts, out._ends
        a_s, a_e = self._starts, self._ends
        b_s, b_e = other._starts, other._ends
        i = j = 0
        while i < len(a_s) or j < len(b_s):
            if j >= len(b_s) or (i < len(a_s) and a_s[i] <= b_s[j]):
                start, end = a_s[i], a_e[i]
                i += 1
            else:
                start, end = b_s[j], b_e[j]
                j += 1
            if ends and start <= ends[-1]:
                if end > ends[-1]:
                    out._count += end - ends[-1]
                    ends[-1] = end
            else:
                starts.append(start)
                ends.append(end)
                out._count += end - start
        return out

    def union_update(self, other: "AtomRuns") -> None:
        """Merge ``other`` in — one O(runs) merge, not per-atom adds."""
        merged = self.union(other)
        self._starts = merged._starts
        self._ends = merged._ends
        self._count = merged._count

    def intersection(self, other: "AtomRuns") -> "AtomRuns":
        out = AtomRuns()
        starts, ends = out._starts, out._ends
        i = j = 0
        a_s, a_e = self._starts, self._ends
        b_s, b_e = other._starts, other._ends
        while i < len(a_s) and j < len(b_s):
            lo = max(a_s[i], b_s[j])
            hi = min(a_e[i], b_e[j])
            if lo < hi:
                starts.append(lo)
                ends.append(hi)
                out._count += hi - lo
            if a_e[i] <= b_e[j]:
                i += 1
            else:
                j += 1
        return out

    def difference(self, other: "AtomRuns") -> "AtomRuns":
        out = AtomRuns()
        starts, ends = out._starts, out._ends
        j = 0
        b_s, b_e = other._starts, other._ends
        for lo, hi in zip(self._starts, self._ends):
            cursor = lo
            while cursor < hi:
                while j < len(b_s) and b_e[j] <= cursor:
                    j += 1
                if j >= len(b_s) or b_s[j] >= hi:
                    starts.append(cursor)
                    ends.append(hi)
                    out._count += hi - cursor
                    break
                if b_s[j] > cursor:
                    starts.append(cursor)
                    ends.append(b_s[j])
                    out._count += b_s[j] - cursor
                cursor = b_e[j]
            # Re-scan ``other`` from the same j for the next run: runs
            # are ascending, so j never needs to move backwards.
        return out

    def isdisjoint(self, other: "AtomRuns") -> bool:
        i = j = 0
        a_s, a_e = self._starts, self._ends
        b_s, b_e = other._starts, other._ends
        while i < len(a_s) and j < len(b_s):
            if max(a_s[i], b_s[j]) < min(a_e[i], b_e[j]):
                return False
            if a_e[i] <= b_e[j]:
                i += 1
            else:
                j += 1
        return True

    def __repr__(self) -> str:
        shown = ", ".join(f"[{s}:{e})" for s, e in list(zip(
            self._starts, self._ends))[:6])
        more = f", +{self.num_runs - 6} runs" if self.num_runs > 6 else ""
        return f"AtomRuns({self._count} atoms: {shown}{more})"
