"""A mutable ordered map backed by a randomized treap.

This is the balanced binary search tree that implements the ordered map
``M`` of Delta-net's atom representation (paper §3.1, Figure 6).  It maps
interval boundaries (non-negative integers) to atom identifiers and
supports the operations the algorithms need:

* ``insert`` / ``get`` / ``remove`` in expected O(log n),
* ``floor_key`` (largest key <= k) and ``succ_key`` (smallest key > k),
  used to resolve which atom a boundary splits,
* ``irange(lo, hi)``, an in-order iteration over keys in ``[lo, hi)``,
  used to enumerate the atoms covering a rule's interval.

The treap uses heap priorities drawn from a per-instance seeded PRNG so
that the tree shape — and therefore every replay — is deterministic.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("key", "value", "prio", "left", "right")

    def __init__(self, key: Any, value: Any, prio: int) -> None:
        self.key = key
        self.value = value
        self.prio = prio
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None


class TreapMap:
    """An ordered mapping with logarithmic ordered queries.

    >>> m = TreapMap()
    >>> m[10] = "a"; m[4] = "b"; m[7] = "c"
    >>> list(m.keys())
    [4, 7, 10]
    >>> m.floor_key(9)
    7
    >>> m.succ_key(7)
    10
    """

    __slots__ = ("_root", "_len", "_rng")

    def __init__(self, seed: int = 0x5EED) -> None:
        self._root: Optional[_Node] = None
        self._len = 0
        self._rng = random.Random(seed)

    # -- sizing / membership -------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not None

    def _find(self, key: Any) -> Optional[_Node]:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node
        return None

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._find(key)
        return default if node is None else node.value

    def __getitem__(self, key: Any) -> Any:
        node = self._find(key)
        if node is None:
            raise KeyError(key)
        return node.value

    # -- mutation ------------------------------------------------------------

    def __setitem__(self, key: Any, value: Any) -> None:
        self.insert(key, value)

    def insert(self, key: Any, value: Any) -> bool:
        """Insert ``key -> value``; return True if the key was new."""
        node = self._find(key)
        if node is not None:
            node.value = value
            return False
        new = _Node(key, value, self._rng.getrandbits(64))
        left, right = self._split(self._root, key)
        self._root = self._merge(self._merge(left, new), right)
        self._len += 1
        return True

    def remove(self, key: Any) -> Any:
        """Remove ``key`` and return its value; raise KeyError if absent."""
        removed: List[Any] = []
        self._root = self._remove(self._root, key, removed)
        if not removed:
            raise KeyError(key)
        self._len -= 1
        return removed[0]

    def _remove(self, node: Optional[_Node], key: Any, removed: List[Any]) -> Optional[_Node]:
        if node is None:
            return None
        if key < node.key:
            node.left = self._remove(node.left, key, removed)
        elif node.key < key:
            node.right = self._remove(node.right, key, removed)
        else:
            removed.append(node.value)
            return self._merge(node.left, node.right)
        return node

    @staticmethod
    def _merge(a: Optional[_Node], b: Optional[_Node]) -> Optional[_Node]:
        """Merge treaps where every key of ``a`` precedes every key of ``b``."""
        if a is None:
            return b
        if b is None:
            return a
        if a.prio > b.prio:
            a.right = TreapMap._merge(a.right, b)
            return a
        b.left = TreapMap._merge(a, b.left)
        return b

    @staticmethod
    def _split(node: Optional[_Node], key: Any) -> Tuple[Optional[_Node], Optional[_Node]]:
        """Split into (keys < key, keys >= key)."""
        if node is None:
            return None, None
        if node.key < key:
            left, right = TreapMap._split(node.right, key)
            node.right = left
            return node, right
        left, right = TreapMap._split(node.left, key)
        node.left = right
        return left, node

    # -- ordered queries -----------------------------------------------------

    def min_key(self) -> Any:
        node = self._root
        if node is None:
            raise KeyError("empty TreapMap")
        while node.left is not None:
            node = node.left
        return node.key

    def max_key(self) -> Any:
        node = self._root
        if node is None:
            raise KeyError("empty TreapMap")
        while node.right is not None:
            node = node.right
        return node.key

    def floor_key(self, key: Any) -> Any:
        """Largest stored key <= ``key``; raise KeyError if none exists."""
        node, best = self._root, None
        while node is not None:
            if node.key < key:
                best = node
                node = node.right
            elif key < node.key:
                node = node.left
            else:
                return node.key
        if best is None:
            raise KeyError(key)
        return best.key

    def succ_key(self, key: Any) -> Any:
        """Smallest stored key strictly greater than ``key``."""
        node, best = self._root, None
        while node is not None:
            if key < node.key:
                best = node
                node = node.left
            else:
                node = node.right
        if best is None:
            raise KeyError(key)
        return best.key

    def floor_item(self, key: Any) -> Tuple[Any, Any]:
        """(key, value) of the largest stored key <= ``key``."""
        node, best = self._root, None
        while node is not None:
            if node.key < key:
                best = node
                node = node.right
            elif key < node.key:
                node = node.left
            else:
                return node.key, node.value
        if best is None:
            raise KeyError(key)
        return best.key, best.value

    # -- iteration -----------------------------------------------------------

    def irange(self, lo: Any = None, hi: Any = None) -> Iterator[Any]:
        """Yield keys ``k`` with ``lo <= k < hi`` in ascending order.

        ``None`` bounds are unbounded on that side.
        """
        for key, _value in self.iritems(lo, hi):
            yield key

    def iritems(self, lo: Any = None, hi: Any = None) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``lo <= key < hi`` in order."""
        stack: List[_Node] = []
        node = self._root
        while node is not None:
            if lo is not None and node.key < lo:
                node = node.right
            else:
                stack.append(node)
                node = node.left
        while stack:
            node = stack.pop()
            if hi is not None and not (node.key < hi):
                return
            yield node.key, node.value
            node = node.right
            while node is not None:
                if lo is not None and node.key < lo:
                    node = node.right
                else:
                    stack.append(node)
                    node = node.left

    def range_values(self, lo: Any = None, hi: Any = None) -> List[Any]:
        """Values for keys in ``[lo : hi)`` as a list, in key order.

        Same contract as :meth:`iritems` but materialized eagerly with no
        generator machinery — the hot-path variant for short ranges that
        are walked immediately (Delta-net enumerates the atoms of a
        rule's interval once per update).
        """
        out: List[Any] = []
        push = out.append
        stack: List[_Node] = []
        node = self._root
        while node is not None:
            if lo is not None and node.key < lo:
                node = node.right
            else:
                stack.append(node)
                node = node.left
        while stack:
            node = stack.pop()
            if hi is not None and not (node.key < hi):
                break
            push(node.value)
            node = node.right
            while node is not None:
                if lo is not None and node.key < lo:
                    node = node.right
                else:
                    stack.append(node)
                    node = node.left
        return out

    # -- copying ---------------------------------------------------------------

    def copy(self) -> "TreapMap":
        """A structurally independent O(n) copy.

        ``_split``/``_merge`` rewrite child pointers in place, so a root
        can never be shared between two live instances; the copy
        duplicates every node (keys and values are shared references).
        The priority PRNG is cloned too, so the copy's future draws —
        and therefore future tree shapes — match the original's.
        """
        dup = TreapMap.__new__(TreapMap)
        dup._len = self._len
        dup._rng = random.Random()
        dup._rng.setstate(self._rng.getstate())
        root = self._root
        if root is None:
            dup._root = None
            return dup
        top = _Node(root.key, root.value, root.prio)
        stack = [(root, top)]
        push = stack.append
        while stack:
            src, dst = stack.pop()
            left, right = src.left, src.right
            if left is not None:
                dst.left = _Node(left.key, left.value, left.prio)
                push((left, dst.left))
            if right is not None:
                dst.right = _Node(right.key, right.value, right.prio)
                push((right, dst.right))
        dup._root = top
        return dup

    # -- persistence hooks (see repro.persist) --------------------------------

    def rng_state(self) -> tuple:
        """The priority PRNG's state, as plain data (ints/None/tuples).

        Restoring it after a rebuild makes *future* priority draws — and
        therefore future tree shapes — match the original instance
        exactly, keeping snapshot/restore behaviourally transparent.
        """
        return self._rng.getstate()

    def set_rng_state(self, state: tuple) -> None:
        version, internal, gauss_next = state
        self._rng.setstate((version, tuple(internal), gauss_next))

    def keys(self) -> Iterator[Any]:
        return self.irange()

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return self.iritems()

    def values(self) -> Iterator[Any]:
        for _key, value in self.iritems():
            yield value

    def __iter__(self) -> Iterator[Any]:
        return self.irange()

    def __repr__(self) -> str:
        preview = ", ".join(f"{k!r}: {v!r}" for k, v in list(self.iritems())[:8])
        suffix = ", ..." if len(self) > 8 else ""
        return f"TreapMap({{{preview}{suffix}}})"
