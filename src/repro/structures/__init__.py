"""Core data structures built from scratch for the Delta-net reproduction.

The paper's complexity analysis (Theorem 1) assumes two balanced
binary-search-tree structures:

* an ordered map ``M`` from interval boundaries to atom identifiers with
  logarithmic insert/lookup/successor queries (:class:`~repro.structures.treap.TreapMap`),
* per ``(atom, source)`` priority-ordered rule containers that support
  arbitrary removal and O(1) logical copy on atom splits
  (:mod:`repro.structures.ptreap`, a persistent treap).

On top of those, edge labels are stored run-length compressed
(:class:`~repro.structures.atomruns.AtomRuns`): sorted runs of
contiguous atom ids with O(log runs) membership and O(runs) bulk
algebra, the representation behind the forwarding index's memory model.

Neither ``sortedcontainers`` nor any other third-party structure is used;
everything here depends only on the standard library.
"""

from repro.structures.atomruns import AtomRuns
from repro.structures.treap import TreapMap
from repro.structures.ptreap import PTreap

__all__ = ["AtomRuns", "TreapMap", "PTreap"]
