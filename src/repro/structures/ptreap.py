"""A persistent (path-copying) treap keyed by rule priority.

Delta-net's ``owner`` structure (paper §3.2) maps every ``(atom, source)``
pair to a balanced BST of rules ordered by priority.  When an atom splits
(Algorithm 1, lines 3-9), the new atom's BSTs start as *copies* of the old
atom's BSTs: ``owner[alpha'] <- owner[alpha]``.

A naive deep copy would make splits cost O(rules-per-switch); instead we
make the treaps *persistent*: every update path-copies O(log n) nodes and
returns a new root, so sharing a root between two atoms is free and safe.
This matches the amortized O(RK log M) bound of Theorem 1.

Keys are ``(priority, rule_id)`` tuples so that rules with equal priority
(which, per the paper's assumption, never overlap but may coexist in a
table) still have a total order.  Heap priorities are a deterministic hash
of the key (splitmix64), keeping replays reproducible.

The module exposes both a functional API operating on roots (used on the
hot path by :mod:`repro.core.deltanet`) and a small value-semantics wrapper
:class:`PTreap` for convenience.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """Deterministic 64-bit mixer (splitmix64 finalizer)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _heap_prio(key: Any) -> int:
    # One mixer round over the built-in hash: Python's tuple hash already
    # combines the parts, and splitmix64 disperses the result so nearby
    # keys (sequential priorities/rule ids) get uncorrelated heap
    # priorities.  Rule keys are int tuples, whose hash is stable across
    # processes, so replays stay reproducible.
    return _splitmix64(hash(key) & _MASK64)


def heap_prio(key: Any) -> int:
    """The deterministic heap priority :func:`insert` derives for ``key``.

    Hot loops that insert the same key into many treaps (one per atom)
    compute this once and pass it as ``insert(..., prio=...)`` instead of
    re-hashing the key per insertion.
    """
    return _heap_prio(key)


class PNode:
    """Immutable treap node; never mutate fields after construction."""

    __slots__ = ("key", "value", "prio", "left", "right")

    def __init__(self, key: Any, value: Any, prio: int,
                 left: Optional["PNode"], right: Optional["PNode"]) -> None:
        self.key = key
        self.value = value
        self.prio = prio
        self.left = left
        self.right = right


Root = Optional[PNode]


def insert(root: Root, key: Any, value: Any,
           prio: Optional[int] = None) -> Root:
    """Return a new root with ``key -> value`` inserted (or replaced).

    ``prio`` may carry a precomputed :func:`heap_prio` of ``key``; passing
    any other value breaks the heap invariant.
    """
    return _insert(root, key, value, _heap_prio(key) if prio is None else prio)


def _insert(node: Root, key: Any, value: Any, prio: int) -> PNode:
    if node is None:
        return PNode(key, value, prio, None, None)
    if key == node.key:
        return PNode(key, value, node.prio, node.left, node.right)
    if key < node.key:
        child = _insert(node.left, key, value, prio)
        new = PNode(node.key, node.value, node.prio, child, node.right)
        if child.prio > new.prio:
            # rotate right
            return PNode(child.key, child.value, child.prio, child.left,
                         PNode(new.key, new.value, new.prio, child.right, new.right))
        return new
    child = _insert(node.right, key, value, prio)
    new = PNode(node.key, node.value, node.prio, node.left, child)
    if child.prio > new.prio:
        # rotate left
        return PNode(child.key, child.value, child.prio,
                     PNode(new.key, new.value, new.prio, new.left, child.left),
                     child.right)
    return new


def remove(root: Root, key: Any) -> Root:
    """Return a new root without ``key``; raise KeyError if absent."""
    new_root, found = _remove(root, key)
    if not found:
        raise KeyError(key)
    return new_root


def _remove(node: Root, key: Any) -> Tuple[Root, bool]:
    if node is None:
        return None, False
    if key < node.key:
        child, found = _remove(node.left, key)
        if not found:
            return node, False
        return PNode(node.key, node.value, node.prio, child, node.right), True
    if node.key < key:
        child, found = _remove(node.right, key)
        if not found:
            return node, False
        return PNode(node.key, node.value, node.prio, node.left, child), True
    return _merge(node.left, node.right), True


def _merge(a: Root, b: Root) -> Root:
    """Persistently merge treaps with all keys of ``a`` below keys of ``b``."""
    if a is None:
        return b
    if b is None:
        return a
    if a.prio > b.prio:
        return PNode(a.key, a.value, a.prio, a.left, _merge(a.right, b))
    return PNode(b.key, b.value, b.prio, _merge(a, b.left), b.right)


def find(root: Root, key: Any) -> Root:
    node = root
    while node is not None:
        if key < node.key:
            node = node.left
        elif node.key < key:
            node = node.right
        else:
            return node
    return None


def max_node(root: Root) -> PNode:
    """Node with the greatest key (the highest-priority rule)."""
    if root is None:
        raise KeyError("empty treap")
    node = root
    while node.right is not None:
        node = node.right
    return node


def min_node(root: Root) -> PNode:
    if root is None:
        raise KeyError("empty treap")
    node = root
    while node.left is not None:
        node = node.left
    return node


def size(root: Root) -> int:
    """Number of nodes (O(n); for tests and diagnostics only)."""
    if root is None:
        return 0
    return 1 + size(root.left) + size(root.right)


def iter_items(root: Root) -> Iterator[Tuple[Any, Any]]:
    """In-order (ascending key) iteration."""
    stack = []
    node = root
    while node is not None:
        stack.append(node)
        node = node.left
    while stack:
        node = stack.pop()
        yield node.key, node.value
        node = node.right
        while node is not None:
            stack.append(node)
            node = node.left


class PTreap:
    """Value-semantics wrapper; every mutator returns a *new* PTreap.

    >>> t = PTreap().insert((1, 0), "low").insert((9, 1), "high")
    >>> t.max().value
    'high'
    >>> t.remove((9, 1)).max().value
    'low'
    >>> t.max().value  # the original is untouched
    'high'
    """

    __slots__ = ("root",)

    def __init__(self, root: Root = None) -> None:
        self.root = root

    def insert(self, key: Any, value: Any) -> "PTreap":
        return PTreap(insert(self.root, key, value))

    def remove(self, key: Any) -> "PTreap":
        return PTreap(remove(self.root, key))

    def find(self, key: Any) -> Root:
        return find(self.root, key)

    def max(self) -> PNode:
        return max_node(self.root)

    def min(self) -> PNode:
        return min_node(self.root)

    def is_empty(self) -> bool:
        return self.root is None

    def __len__(self) -> int:
        return size(self.root)

    def __bool__(self) -> bool:
        return self.root is not None

    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        return iter_items(self.root)

    def __contains__(self, key: Any) -> bool:
        return find(self.root, key) is not None
