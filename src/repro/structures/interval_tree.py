"""An augmented interval tree (treap + subtree max-hi) built from scratch.

Chen's Veriflow optimization (§5: "Similar to [10], we represent IP
prefixes in a balanced binary search tree") replaces the trie with a
balanced BST over intervals.  This structure supports the two queries
Veriflow's algorithm needs:

* ``stab(point)`` — all intervals containing a point,
* ``overlapping(lo, hi)`` — all intervals intersecting a range,

in O(log n + answer) expected time, via the classic max-hi augmentation:
every node caches the maximum upper bound in its subtree, letting whole
subtrees be pruned when their max-hi cannot reach the query.

Keys are ``(lo, serial)`` so duplicate intervals coexist.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("lo", "hi", "value", "serial", "prio", "left", "right",
                 "max_hi")

    def __init__(self, lo: int, hi: int, value: Any, serial: int,
                 prio: int) -> None:
        self.lo = lo
        self.hi = hi
        self.value = value
        self.serial = serial
        self.prio = prio
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.max_hi = hi

    @property
    def key(self) -> Tuple[int, int]:
        return (self.lo, self.serial)


def _max_hi(node: Optional[_Node]) -> int:
    return node.max_hi if node is not None else -1


def _pull(node: _Node) -> _Node:
    node.max_hi = max(node.hi, _max_hi(node.left), _max_hi(node.right))
    return node


class IntervalTree:
    """A multiset of half-closed intervals with stabbing/overlap queries."""

    def __init__(self, seed: int = 0xA11) -> None:
        self._root: Optional[_Node] = None
        self._rng = random.Random(seed)
        self._serial = 0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    # -- mutation ---------------------------------------------------------------

    def insert(self, lo: int, hi: int, value: Any = None) -> int:
        """Insert ``[lo : hi)``; returns a serial usable for removal."""
        if lo >= hi:
            raise ValueError(f"empty interval [{lo}:{hi})")
        serial = self._serial
        self._serial += 1
        node = _Node(lo, hi, value, serial, self._rng.getrandbits(64))
        self._root = self._insert(self._root, node)
        self._len += 1
        return serial

    def _insert(self, root: Optional[_Node], node: _Node) -> _Node:
        if root is None:
            return node
        if node.prio > root.prio:
            left, right = self._split(root, node.key)
            node.left, node.right = left, right
            return _pull(node)
        if node.key < root.key:
            root.left = self._insert(root.left, node)
        else:
            root.right = self._insert(root.right, node)
        return _pull(root)

    def _split(self, node: Optional[_Node],
               key: Tuple[int, int]) -> Tuple[Optional[_Node], Optional[_Node]]:
        if node is None:
            return None, None
        if node.key < key:
            left, right = self._split(node.right, key)
            node.right = left
            _pull(node)
            return node, right
        left, right = self._split(node.left, key)
        node.left = right
        _pull(node)
        return left, node

    def _merge(self, a: Optional[_Node], b: Optional[_Node]) -> Optional[_Node]:
        if a is None:
            return b
        if b is None:
            return a
        if a.prio > b.prio:
            a.right = self._merge(a.right, b)
            return _pull(a)
        b.left = self._merge(a, b.left)
        return _pull(b)

    def remove(self, lo: int, serial: int) -> Any:
        """Remove the interval inserted with this ``(lo, serial)``."""
        removed: List[Any] = []
        self._root = self._remove(self._root, (lo, serial), removed)
        if not removed:
            raise KeyError((lo, serial))
        self._len -= 1
        return removed[0]

    def _remove(self, node: Optional[_Node], key: Tuple[int, int],
                removed: List[Any]) -> Optional[_Node]:
        if node is None:
            return None
        if key == node.key:
            removed.append(node.value)
            return self._merge(node.left, node.right)
        if key < node.key:
            node.left = self._remove(node.left, key, removed)
        else:
            node.right = self._remove(node.right, key, removed)
        return _pull(node)

    # -- queries -------------------------------------------------------------------

    def stab(self, point: int) -> Iterator[Any]:
        """Values of all intervals containing ``point``."""
        yield from self.overlapping(point, point + 1)

    def overlapping(self, lo: int, hi: int) -> Iterator[Any]:
        """Values of all intervals intersecting ``[lo : hi)``."""
        if lo >= hi:
            raise ValueError(f"empty query [{lo}:{hi})")
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None or node.max_hi <= lo:
                continue  # nothing in this subtree reaches the query
            # Left subtree can always contain qualifying intervals
            # (its los are smaller; max-hi pruning applies on push).
            stack.append(node.left)
            if node.lo < hi:
                if node.hi > lo:
                    yield node.value
                stack.append(node.right)
            # If node.lo >= hi, all right keys start even later: prune.

    def items(self) -> Iterator[Tuple[int, int, Any]]:
        """All ``(lo, hi, value)`` triples in key order."""
        stack: List[_Node] = []
        node = self._root
        while node is not None:
            stack.append(node)
            node = node.left
        while stack:
            node = stack.pop()
            yield node.lo, node.hi, node.value
            node = node.right
            while node is not None:
                stack.append(node)
                node = node.left

    def __repr__(self) -> str:
        return f"IntervalTree(len={self._len})"
