"""The measurement loop behind §4.3.1: replay ops, check, time each one.

"To evaluate Delta-net's performance with respect to rule insertions and
removals, we build the delta-graph for each operation, and find in it all
forwarding loops."  :class:`SessionEngine` does that through the unified
:class:`repro.api.VerificationSession`, so *any* registered backend
(``deltanet``, ``veriflow``, ``apv``, ``netplumber``, ``sharded``) can be
replayed and timed identically; :func:`make_engine` resolves a registry
name (plus the ``deltanet-gc`` variant) to an engine.

:class:`DeltaNetEngine` and :class:`VeriflowEngine` are the original
hand-rolled engines, kept as thin deprecated aliases for callers that
poke at ``engine.deltanet`` / ``engine.veriflow`` directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Protocol, Sequence

from repro.checkers.loops import LoopChecker
from repro.core.deltanet import DeltaNet
from repro.datasets.format import Op
from repro.veriflow.verifier import VeriflowRI


class Engine(Protocol):
    """A data-plane checker that can process one operation."""

    def process(self, op: Op) -> int:
        """Apply the op, run the per-update check; return #loops found."""


class SessionEngine:
    """Replay engine over a :class:`repro.api.VerificationSession`.

    ``process`` applies one op through the session; with
    ``check_loops=True`` a :class:`repro.api.LoopProperty` subscription
    counts the *new* loop violations each update surfaces.

    With ``checkpoint_dir`` set, the engine journals every applied op
    into a :class:`repro.persist.SessionStore` and writes a full
    snapshot every ``checkpoint_every`` ops — a killed replay resumes
    from ``snapshot + journal tail`` via :meth:`resume` instead of
    rebuilding from rule zero.  A clean :meth:`close` writes a final
    checkpoint, so a later resume has nothing to replay.
    """

    def __init__(self, backend: str = "deltanet", width: int = 32,
                 check_loops: bool = True,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: int = 1000, **options) -> None:
        from repro.api import LoopProperty, VerificationSession

        properties = (LoopProperty(),) if check_loops else ()
        if backend in ("veriflow", "sharded", "parallel"):
            # These fuse loop checking into the update itself; with
            # checking off, the native per-update sweep must be skipped
            # too or --no-check would still pay for it.
            options.setdefault("check_loops", check_loops)
        self.session = VerificationSession(
            backend, width=width, properties=properties, **options)
        self.check_loops = check_loops
        self.store = None
        self.checkpoint_every = checkpoint_every
        if checkpoint_dir is not None:
            self._attach_store(checkpoint_dir, initial_checkpoint=True)

    def _attach_store(self, directory: str, initial_checkpoint: bool) -> None:
        from repro.persist import SessionStore

        self.store = SessionStore(directory)
        if initial_checkpoint:
            self.store.checkpoint(self.session)
        self._last_checkpoint = self.session.sequence

    @classmethod
    def resume(cls, checkpoint_dir: str, check_loops: bool = True,
               checkpoint_every: int = 1000, **backend_overrides):
        """Recover a checkpointed replay: ``(engine, RecoveryInfo)``.

        The recovered session's ``sequence`` says how many ops of the
        original stream are already applied — continue from there.
        ``backend_overrides`` adjust the snapshot's saved backend
        options (e.g. ``force_inline=True`` to restore a parallel
        checkpoint without spawning workers).
        """
        from repro.persist import SessionStore

        store = SessionStore(checkpoint_dir)
        if not store.exists():
            raise FileNotFoundError(
                f"no checkpoint to resume in {checkpoint_dir!r}")
        session, info = store.recover(**backend_overrides)
        engine = cls.__new__(cls)
        engine.session = session
        engine.check_loops = check_loops
        engine.store = store
        engine.checkpoint_every = checkpoint_every
        engine._last_checkpoint = info.snapshot_sequence
        if info.replayed:
            # The journal tail is now state the snapshot does not cover;
            # fold it in so the next crash replays only fresh ops.
            engine.checkpoint_now()
        return engine, info

    # -- the replay surface ------------------------------------------------------

    def process(self, op: Op) -> int:
        result = self.session.apply(op)
        if self.store is not None:
            self.store.record(op, self.session.sequence)
            self._maybe_checkpoint()
        return len(result.violations)

    def process_batch(self, ops: Sequence[Op]) -> int:
        """Apply a chunk of ops as one aggregated batch (see
        :func:`iter_batches` for the chunking contract)."""
        result = self.session.apply_batch(
            [op.rule for op in ops if op.is_insert],
            [op.rid for op in ops if not op.is_insert])
        if self.store is not None:
            self.store.record_batch(ops, self.session.sequence)
            self._maybe_checkpoint()
        return len(result.violations)

    # -- checkpointing -----------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        if self.session.sequence - self._last_checkpoint >= self.checkpoint_every:
            self.checkpoint_now()

    def checkpoint_now(self) -> int:
        """Write a snapshot and rotate the journal; returns the sequence."""
        if self.store is None:
            raise RuntimeError("engine has no checkpoint store attached")
        sequence = self.store.checkpoint(self.session)
        self._last_checkpoint = sequence
        return sequence

    def close(self) -> None:
        if self.store is not None:
            if self.session.sequence > self._last_checkpoint:
                self.checkpoint_now()
            self.store.close()
        self.session.close()

    @property
    def backend_name(self) -> str:
        return self.session.backend_name

    @property
    def num_atoms(self) -> Optional[int]:
        """Atom count for atom-based backends, else ``None``."""
        native = self.session.native
        return getattr(native, "num_atoms", None)


def make_engine(name: str, check_loops: bool = True, width: int = 32,
                **options) -> SessionEngine:
    """Resolve an engine name via the backend registry.

    Accepts every :func:`repro.api.available_backends` name plus the
    ``deltanet-gc`` convenience alias (Delta-net with atom GC enabled).
    Unknown names raise :class:`repro.api.UnknownBackendError`.
    ``checkpoint_dir``/``checkpoint_every`` pass through to
    :class:`SessionEngine`'s snapshot/journal machinery.
    """
    if name == "deltanet-gc":
        return SessionEngine("deltanet", width=width,
                             check_loops=check_loops, gc=True, **options)
    return SessionEngine(name, width=width, check_loops=check_loops,
                         **options)


def engine_names() -> List[str]:
    """All names :func:`make_engine` accepts, sorted."""
    from repro.api import available_backends

    return sorted((*available_backends(), "deltanet-gc"))


class DeltaNetEngine:
    """Delta-net + incremental delta-graph loop checking.

    .. deprecated:: use ``make_engine("deltanet")`` / the session API.
    """

    def __init__(self, width: int = 32, gc: bool = False,
                 check_loops: bool = True) -> None:
        self.deltanet = DeltaNet(width=width, gc=gc)
        self.checker = LoopChecker(self.deltanet)
        self.check_loops = check_loops

    def process(self, op: Op) -> int:
        if op.is_insert:
            delta_graph = self.deltanet.insert_rule(op.rule)
        else:
            delta_graph = self.deltanet.remove_rule(op.rid)
        if not self.check_loops:
            return 0
        return len(self.checker.check_update(delta_graph))

    @property
    def num_atoms(self) -> int:
        return self.deltanet.num_atoms


class VeriflowEngine:
    """Veriflow-RI's per-update EC computation and per-EC graph checks.

    .. deprecated:: use ``make_engine("veriflow")`` / the session API.
    """

    def __init__(self, width: int = 32, check_loops: bool = True) -> None:
        self.veriflow = VeriflowRI(width=width)
        self.check_loops = check_loops
        self.max_affected_ecs = 0

    def process(self, op: Op) -> int:
        if op.is_insert:
            result = self.veriflow.insert_rule(op.rule, check_loops=self.check_loops)
        else:
            result = self.veriflow.remove_rule(op.rid, check_loops=self.check_loops)
        self.max_affected_ecs = max(self.max_affected_ecs, result.num_ecs)
        return len(result.loops)


@dataclass
class ReplayResult:
    """Per-operation timings plus check outcomes."""

    engine_name: str
    times: List[float] = field(default_factory=list)  # seconds per op
    loops_found: int = 0
    num_ops: int = 0

    @property
    def total_time(self) -> float:
        return sum(self.times)

    def summary(self) -> dict:
        from repro.analysis.stats import summarize

        return summarize(self.times)


def iter_batches(ops: Iterable[Op], batch_size: int) -> Iterable[List[Op]]:
    """Chunk an op stream into batches safe for removals-first replay.

    A batch is applied as "all removals, then all insertions", so a chunk
    must never contain an operation that depends on a *later-kind* op of
    the same chunk: an insert followed (in stream order) by a removal of
    the same rule id, a re-insert of an id inserted earlier in the chunk,
    or a duplicate removal.  The chunker flushes early at each such
    conflict, preserving exact sequential semantics; remove-then-reinsert
    of the same id stays within one batch (that *is* the batch order).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    batch: List[Op] = []
    inserted: set = set()
    removed: set = set()
    for op in ops:
        conflict = (op.rid in inserted if op.is_insert
                    else op.rid in inserted or op.rid in removed)
        if batch and (conflict or len(batch) >= batch_size):
            yield batch
            batch, inserted, removed = [], set(), set()
        batch.append(op)
        (inserted if op.is_insert else removed).add(op.rid)
    if batch:
        yield batch


def replay(ops: Iterable[Op], engine: Engine,
           engine_name: Optional[str] = None,
           progress_every: int = 0,
           progress: Callable[[int], None] = None,
           batch_size: Optional[int] = None) -> ReplayResult:
    """Replay ``ops`` through ``engine``, timing each operation.

    With ``batch_size`` set (and an engine providing ``process_batch``),
    ops are applied in aggregated batches (see :func:`iter_batches`);
    each batch's wall time is split evenly across its ops so the
    per-operation statistics stay comparable with single-op replays.
    """
    result = ReplayResult(engine_name=engine_name or type(engine).__name__)
    clock = time.perf_counter
    if batch_size is not None:
        process_batch = getattr(engine, "process_batch", None)
        if process_batch is None:
            raise TypeError(
                f"{type(engine).__name__} does not support batched replay")
        for batch in iter_batches(ops, batch_size):
            start = clock()
            loops = process_batch(batch)
            elapsed = clock() - start
            result.times.extend([elapsed / len(batch)] * len(batch))
            result.loops_found += loops
            result.num_ops += len(batch)
            if progress_every and progress and \
                    result.num_ops % progress_every < len(batch):
                progress(result.num_ops)
        return result
    for index, op in enumerate(ops):
        start = clock()
        loops = engine.process(op)
        result.times.append(clock() - start)
        result.loops_found += loops
        result.num_ops += 1
        if progress_every and progress and (index + 1) % progress_every == 0:
            progress(index + 1)
    return result
