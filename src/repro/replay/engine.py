"""The measurement loop behind §4.3.1: replay ops, check, time each one.

"To evaluate Delta-net's performance with respect to rule insertions and
removals, we build the delta-graph for each operation, and find in it all
forwarding loops."  :class:`SessionEngine` does that through the unified
:class:`repro.api.VerificationSession`, so *any* registered backend
(``deltanet``, ``veriflow``, ``apv``, ``netplumber``, ``sharded``) can be
replayed and timed identically; :func:`make_engine` resolves a registry
name (plus the ``deltanet-gc`` variant) to an engine.

:class:`DeltaNetEngine` and :class:`VeriflowEngine` are the original
hand-rolled engines, kept as thin deprecated aliases for callers that
poke at ``engine.deltanet`` / ``engine.veriflow`` directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Protocol, Sequence

from repro.checkers.loops import LoopChecker
from repro.core.deltanet import DeltaNet
from repro.datasets.format import Op
from repro.veriflow.verifier import VeriflowRI


class Engine(Protocol):
    """A data-plane checker that can process one operation."""

    def process(self, op: Op) -> int:
        """Apply the op, run the per-update check; return #loops found."""


class SessionEngine:
    """Replay engine over a :class:`repro.api.VerificationSession`.

    ``process`` applies one op through the session; with
    ``check_loops=True`` a :class:`repro.api.LoopProperty` subscription
    counts the *new* loop violations each update surfaces.
    """

    def __init__(self, backend: str = "deltanet", width: int = 32,
                 check_loops: bool = True, **options) -> None:
        from repro.api import LoopProperty, VerificationSession

        properties = (LoopProperty(),) if check_loops else ()
        if backend == "veriflow":
            # Veriflow fuses loop checking into the update itself; with
            # checking off, the native per-update EC sweep must be
            # skipped too or --no-check would still pay for it.
            options.setdefault("check_loops", check_loops)
        self.session = VerificationSession(
            backend, width=width, properties=properties, **options)
        self.check_loops = check_loops

    def process(self, op: Op) -> int:
        result = self.session.apply(op)
        return len(result.violations)

    @property
    def backend_name(self) -> str:
        return self.session.backend_name

    @property
    def num_atoms(self) -> Optional[int]:
        """Atom count for atom-based backends, else ``None``."""
        native = self.session.native
        return getattr(native, "num_atoms", None)


def make_engine(name: str, check_loops: bool = True, width: int = 32,
                **options) -> SessionEngine:
    """Resolve an engine name via the backend registry.

    Accepts every :func:`repro.api.available_backends` name plus the
    ``deltanet-gc`` convenience alias (Delta-net with atom GC enabled).
    Unknown names raise :class:`repro.api.UnknownBackendError`.
    """
    if name == "deltanet-gc":
        return SessionEngine("deltanet", width=width,
                             check_loops=check_loops, gc=True, **options)
    return SessionEngine(name, width=width, check_loops=check_loops,
                         **options)


def engine_names() -> List[str]:
    """All names :func:`make_engine` accepts, sorted."""
    from repro.api import available_backends

    return sorted((*available_backends(), "deltanet-gc"))


class DeltaNetEngine:
    """Delta-net + incremental delta-graph loop checking.

    .. deprecated:: use ``make_engine("deltanet")`` / the session API.
    """

    def __init__(self, width: int = 32, gc: bool = False,
                 check_loops: bool = True) -> None:
        self.deltanet = DeltaNet(width=width, gc=gc)
        self.checker = LoopChecker(self.deltanet)
        self.check_loops = check_loops

    def process(self, op: Op) -> int:
        if op.is_insert:
            delta_graph = self.deltanet.insert_rule(op.rule)
        else:
            delta_graph = self.deltanet.remove_rule(op.rid)
        if not self.check_loops:
            return 0
        return len(self.checker.check_update(delta_graph))

    @property
    def num_atoms(self) -> int:
        return self.deltanet.num_atoms


class VeriflowEngine:
    """Veriflow-RI's per-update EC computation and per-EC graph checks.

    .. deprecated:: use ``make_engine("veriflow")`` / the session API.
    """

    def __init__(self, width: int = 32, check_loops: bool = True) -> None:
        self.veriflow = VeriflowRI(width=width)
        self.check_loops = check_loops
        self.max_affected_ecs = 0

    def process(self, op: Op) -> int:
        if op.is_insert:
            result = self.veriflow.insert_rule(op.rule, check_loops=self.check_loops)
        else:
            result = self.veriflow.remove_rule(op.rid, check_loops=self.check_loops)
        self.max_affected_ecs = max(self.max_affected_ecs, result.num_ecs)
        return len(result.loops)


@dataclass
class ReplayResult:
    """Per-operation timings plus check outcomes."""

    engine_name: str
    times: List[float] = field(default_factory=list)  # seconds per op
    loops_found: int = 0
    num_ops: int = 0

    @property
    def total_time(self) -> float:
        return sum(self.times)

    def summary(self) -> dict:
        from repro.analysis.stats import summarize

        return summarize(self.times)


def replay(ops: Iterable[Op], engine: Engine,
           engine_name: Optional[str] = None,
           progress_every: int = 0,
           progress: Callable[[int], None] = None) -> ReplayResult:
    """Replay ``ops`` through ``engine``, timing each operation."""
    result = ReplayResult(engine_name=engine_name or type(engine).__name__)
    clock = time.perf_counter
    for index, op in enumerate(ops):
        start = clock()
        loops = engine.process(op)
        result.times.append(clock() - start)
        result.loops_found += loops
        result.num_ops += 1
        if progress_every and progress and (index + 1) % progress_every == 0:
            progress(index + 1)
    return result
