"""Replay harness: drive a verifier with a dataset and time every op."""

from repro.replay.engine import (
    DeltaNetEngine, Engine, ReplayResult, SessionEngine, VeriflowEngine,
    engine_names, iter_batches, make_engine, replay,
)

__all__ = [
    "Engine", "SessionEngine", "make_engine", "engine_names",
    "DeltaNetEngine", "VeriflowEngine", "ReplayResult", "replay",
    "iter_batches",
]
