"""Replay harness: drive a verifier with a dataset and time every op."""

from repro.replay.engine import (
    DeltaNetEngine, VeriflowEngine, ReplayResult, replay,
)

__all__ = ["DeltaNetEngine", "VeriflowEngine", "ReplayResult", "replay"]
