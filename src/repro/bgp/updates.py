"""BGP update streams: announcements, withdrawals, and flaps.

Feeds the SDN-IP emulation (paper §4.2.2): each external border router
advertises prefixes via eBGP; routes may later be withdrawn and
re-announced (route flapping), which exercises rule removal paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.bgp.prefixes import Prefix, PrefixPool


@dataclass(frozen=True)
class BgpUpdate:
    """One eBGP message from a peer."""

    kind: str            # "announce" | "withdraw"
    prefix: Prefix
    peer: object         # the border router originating the update
    as_path_length: int  # best-route tie-breaking metric

    def __post_init__(self) -> None:
        if self.kind not in ("announce", "withdraw"):
            raise ValueError(f"bad update kind {self.kind!r}")


class UpdateStream:
    """Deterministic generator of update sequences for a set of peers."""

    def __init__(self, peers: Sequence[object], pool: PrefixPool,
                 prefixes_per_peer: int = 100, seed: int = 1) -> None:
        if not peers:
            raise ValueError("need at least one peer")
        self._rng = random.Random(seed)
        self.peers = list(peers)
        self.advertisements: List[Tuple[object, Prefix, int]] = []
        for peer in self.peers:
            for prefix in pool.sample(prefixes_per_peer):
                self.advertisements.append(
                    (peer, prefix, self._rng.randint(1, 6)))

    def initial_announcements(self) -> Iterator[BgpUpdate]:
        """Every peer announces its full set of prefixes once."""
        for peer, prefix, path_len in self.advertisements:
            yield BgpUpdate("announce", prefix, peer, path_len)

    def flaps(self, count: int) -> Iterator[BgpUpdate]:
        """``count`` withdraw/re-announce pairs of random advertisements."""
        for _ in range(count):
            peer, prefix, path_len = self._rng.choice(self.advertisements)
            yield BgpUpdate("withdraw", prefix, peer, path_len)
            yield BgpUpdate("announce", prefix, peer, path_len)

    def churn(self, count: int, announce_bias: float = 0.5) -> Iterator[BgpUpdate]:
        """A random mix of announces and withdraws (may be redundant)."""
        for _ in range(count):
            peer, prefix, path_len = self._rng.choice(self.advertisements)
            if self._rng.random() < announce_bias:
                yield BgpUpdate("announce", prefix, peer, path_len)
            else:
                yield BgpUpdate("withdraw", prefix, peer, path_len)
