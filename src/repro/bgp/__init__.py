"""BGP substrate: synthetic Route-Views-style prefixes, updates, and RIBs.

The paper draws its IP prefixes from "over half a million real-world BGP
updates collected by the Route Views project" (§4.2).  Offline, we
synthesize a prefix pool with the documented global-table shape —
dominant /24s, substantial /16-/23 mass, and overlapping less-specifics —
plus announce/withdraw update streams with flapping, and a per-speaker
RIB with deterministic best-route selection.  What the verification
algorithms care about — heavy interval overlap and shared bounds — is
preserved (see DESIGN.md "Substitutions").
"""

from repro.bgp.prefixes import PrefixPool
from repro.bgp.updates import BgpUpdate, UpdateStream
from repro.bgp.rib import Rib, Route

__all__ = ["PrefixPool", "BgpUpdate", "UpdateStream", "Rib", "Route"]
