"""A BGP speaker's RIB with deterministic best-route selection.

Mirrors the internal BGP speaker of the SDN-IP setup (paper Figure 7):
it ingests :class:`~repro.bgp.updates.BgpUpdate` messages from all peers,
keeps per-prefix candidate routes, and exposes best-route *change events*
— exactly the signal SDN-IP converts into rule installations/removals.

Best-route selection: shortest AS path, then lowest peer repr (a stable
stand-in for router-id tie-breaking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bgp.prefixes import Prefix
from repro.bgp.updates import BgpUpdate


@dataclass(frozen=True)
class Route:
    """A candidate route: reach ``prefix`` via border router ``peer``."""

    prefix: Prefix
    peer: object
    as_path_length: int

    @property
    def preference_key(self) -> Tuple[int, str]:
        return (self.as_path_length, repr(self.peer))


@dataclass(frozen=True)
class RouteChange:
    """A best-route transition for one prefix."""

    prefix: Prefix
    old: Optional[Route]
    new: Optional[Route]


class Rib:
    """Routing information base with best-route change notifications."""

    def __init__(self) -> None:
        self._candidates: Dict[Prefix, Dict[object, Route]] = {}
        self._best: Dict[Prefix, Route] = {}

    @property
    def num_prefixes(self) -> int:
        return len(self._best)

    def best(self, prefix: Prefix) -> Optional[Route]:
        return self._best.get(prefix)

    def best_routes(self) -> Dict[Prefix, Route]:
        return dict(self._best)

    def apply(self, update: BgpUpdate) -> Optional[RouteChange]:
        """Process one update; return the best-route change, if any."""
        prefix = update.prefix
        candidates = self._candidates.setdefault(prefix, {})
        if update.kind == "announce":
            candidates[update.peer] = Route(prefix, update.peer,
                                            update.as_path_length)
        else:
            candidates.pop(update.peer, None)
        new_best = (min(candidates.values(), key=lambda r: r.preference_key)
                    if candidates else None)
        old_best = self._best.get(prefix)
        if new_best == old_best:
            return None
        if new_best is None:
            del self._best[prefix]
            if not candidates:
                del self._candidates[prefix]
        else:
            self._best[prefix] = new_best
        return RouteChange(prefix, old_best, new_best)

    def __repr__(self) -> str:
        return f"Rib(prefixes={self.num_prefixes})"
