"""Synthetic Route-Views-like IPv4 prefix pools.

The global BGP table's prefix-length histogram is strongly peaked at /24
(more than half of all routes), with most remaining mass between /16 and
/23, a thin tail of short prefixes, and pervasive overlap: /24s announced
inside covering /16s or /20s, etc.  ``PrefixPool`` reproduces that shape
from a seed:

1. draw "allocation" supernets (/8-/15),
2. draw provider aggregates (/16-/22) inside supernets,
3. draw customer /23-/24 more-specifics inside aggregates.

The resulting pool is heavily overlapping and deduplicated, which is the
property Delta-net's atoms exploit (Table 3: atoms << rules).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence, Set, Tuple

from repro.core.prefix import format_prefix, make_interval

Prefix = Tuple[int, int]  # (network address, prefix length)

#: Approximate global-table prefix-length mass (fraction per length).
DEFAULT_LENGTH_MASS = {
    8: 0.004, 10: 0.006, 12: 0.010, 13: 0.012, 14: 0.018, 15: 0.020,
    16: 0.095, 17: 0.030, 18: 0.045, 19: 0.060, 20: 0.075, 21: 0.065,
    22: 0.110, 23: 0.080, 24: 0.370,
}


class PrefixPool:
    """A deterministic pool of overlapping IPv4 prefixes."""

    def __init__(self, seed: int = 42, n_supernets: int = 48) -> None:
        self._rng = random.Random(seed)
        self._seen: Set[Prefix] = set()
        self._supernets: List[Prefix] = []
        self._aggregates: List[Prefix] = []
        for _ in range(n_supernets):
            plen = self._rng.choice((8, 10, 12, 13, 14, 15))
            base = self._rng.getrandbits(32)
            lo, _hi = make_interval(base, plen)
            self._supernets.append((lo, plen))

    def _sub_prefix(self, parent: Prefix, plen: int) -> Prefix:
        parent_lo, parent_plen = parent
        if plen < parent_plen:
            raise ValueError("child prefix shorter than parent")
        offset_bits = plen - parent_plen
        offset = self._rng.getrandbits(offset_bits) if offset_bits else 0
        lo = parent_lo | (offset << (32 - plen))
        return (lo, plen)

    def draw(self) -> Prefix:
        """One prefix with the global-table length distribution."""
        lengths = list(DEFAULT_LENGTH_MASS)
        weights = [DEFAULT_LENGTH_MASS[p] for p in lengths]
        plen = self._rng.choices(lengths, weights=weights)[0]
        if plen <= 15:
            base = self._rng.choice(self._supernets)
            if base[1] <= plen:
                return self._sub_prefix(base, plen)
            lo, _hi = make_interval(self._rng.getrandbits(32), plen)
            return (lo, plen)
        if plen <= 22:
            prefix = self._sub_prefix(self._rng.choice(self._supernets), plen)
            # Remember aggregates so /23-/24s can nest inside them.
            if len(self._aggregates) < 4096:
                self._aggregates.append(prefix)
            return prefix
        if self._aggregates and self._rng.random() < 0.8:
            return self._sub_prefix(self._rng.choice(self._aggregates), plen)
        return self._sub_prefix(self._rng.choice(self._supernets), plen)

    def sample(self, count: int, unique: bool = True) -> List[Prefix]:
        """Draw ``count`` prefixes (unique by default)."""
        out: List[Prefix] = []
        guard = 0
        while len(out) < count:
            prefix = self.draw()
            guard += 1
            if guard > count * 50 + 1000:
                raise RuntimeError("prefix pool exhausted; lower `count`")
            if unique:
                if prefix in self._seen:
                    continue
                self._seen.add(prefix)
            out.append(prefix)
        return out

    @staticmethod
    def to_interval(prefix: Prefix) -> Tuple[int, int]:
        return make_interval(prefix[0], prefix[1])

    @staticmethod
    def to_text(prefix: Prefix) -> str:
        return format_prefix(prefix[0], prefix[1])


def overlap_fraction(prefixes: Sequence[Prefix]) -> float:
    """Fraction of prefixes overlapping at least one other (diagnostic)."""
    intervals = sorted(make_interval(lo, plen) for lo, plen in prefixes)
    overlapping = 0
    max_hi = -1
    # A prefix overlaps a predecessor iff its lo is below the running max
    # hi; prefix intervals are laminar so this one-pass check is exact for
    # "overlaps anything before it", and we sweep both directions.
    flags = [False] * len(intervals)
    for index, (lo, hi) in enumerate(intervals):
        if lo < max_hi:
            flags[index] = True
        max_hi = max(max_hi, hi)
    for index in range(len(intervals) - 1):
        if intervals[index][1] > intervals[index + 1][0]:
            flags[index] = True
    return sum(flags) / len(flags) if flags else 0.0
