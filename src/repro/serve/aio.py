"""The multi-tenant asyncio serving layer: one hub, many named sessions.

:class:`AsyncSessionHub` multiplexes every connected controller over a
:class:`~repro.serve.sessions.SessionManager`.  The concurrency model
is the one the wire protocol promises (``docs/protocol.md``):

- **one writer task per session** — mutating verbs (``insert``,
  ``remove``, ``batch``, ``watch``, ``checkpoint``, ``audit``, and the
  speculative ``speculate`` / ``commit`` / ``discard``) are
  enqueued onto the target session's bounded queue and applied by that
  session's single writer task, so writes serialize per tenant while
  different tenants proceed in parallel (speculative children live
  inside their session's :class:`StreamServer` and inherit its
  admission control and metrics scope);
- **concurrent readers** — ``query``, ``violations``, ``stats``,
  ``ping`` run straight on the executor pool under the session's
  shared read lock, never waiting behind another tenant's writes;
- **admission control per tenant** — a full writer queue answers
  ``overloaded`` with the session's ``retry_after`` immediately,
  without blocking the event loop or the connection;
- **hub verbs** — ``open`` / ``attach`` / ``detach`` / ``sessions``
  manage which session a connection talks to, and ``metrics`` /
  ``health`` answer from the hub without touching any session lock.

Transports: :func:`serve_hub_tcp` (asyncio TCP, many concurrent
connections) and :func:`serve_hub_stdio` (the single-connection stdio
compatibility mode the pre-multi-tenant CLI used).  Both write and
flush every response — including backpressure refusals — before
blocking on the next request frame.
"""

from __future__ import annotations

import asyncio
import json
import threading
from functools import partial
from typing import Any, Callable, Dict, IO, Optional, Tuple

from repro.serve.sessions import SessionError, SessionManager
from repro.serve.stream import (
    DEFAULT_MAX_LINE_BYTES, DrainRequested, StreamServer, WRITE_CMDS,
    _read_capped,
)

#: Mutating verbs routed through a session's writer task.  ``shutdown``
#: is hub-level in multi-tenant mode, hence excluded.
HUB_WRITE_CMDS = frozenset(WRITE_CMDS - {"shutdown"})

#: ``open`` request keys forwarded to the session factory.
_OPEN_OVERRIDE_KEYS = ("engine", "width", "properties", "checkpoint_every",
                       "checkpoint_interval", "scrub_interval",
                       "scrub_budget")


class HubConnection:
    """Per-connection state: which session the connection is attached to."""

    def __init__(self) -> None:
        """Start detached (every session verb then needs ``"session"``)."""
        self.session: Optional[str] = None


class _AsyncLineFramer:
    """Newline framing over an :class:`asyncio.StreamReader` with a cap.

    Mirrors :func:`repro.serve.stream._read_capped`: an oversized line
    is discarded chunk by chunk up to its newline — at most ``limit``
    bytes of it are ever buffered — and the stream stays framed for
    the next request.
    """

    def __init__(self, reader: asyncio.StreamReader, limit: int) -> None:
        self._reader = reader
        self._limit = limit
        self._buf = bytearray()

    async def next_frame(self) -> Tuple[Optional[str], bool]:
        """Return ``(line, oversized)``; ``line`` is ``None`` at EOF."""
        oversized = False
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                raw = bytes(self._buf[:newline])
                del self._buf[:newline + 1]
                if oversized or len(raw) > self._limit:
                    return "", True
                return raw.decode("utf-8", "replace"), False
            if len(self._buf) > self._limit:
                # Already too long without a newline: drop what we
                # have and keep draining until the line ends.
                oversized = True
                self._buf.clear()
            chunk = await self._reader.read(65536)
            if not chunk:
                if not self._buf and not oversized:
                    return None, False
                raw = bytes(self._buf)
                self._buf.clear()
                if oversized or len(raw) > self._limit:
                    return "", True
                return raw.decode("utf-8", "replace"), False
            self._buf.extend(chunk)


class _Writer:
    """One session's write pipeline: a bounded queue and its task."""

    def __init__(self, queue: "asyncio.Queue", task: "asyncio.Task") -> None:
        self.queue = queue
        self.task = task


class AsyncSessionHub:
    """Route protocol requests from many connections to named sessions.

    One hub owns one :class:`SessionManager` and must be driven from a
    single asyncio event loop (its writer tasks live there); the
    blocking session work itself runs on the loop's default executor,
    so the loop stays responsive while a backend computes.
    """

    def __init__(self, manager: SessionManager, *,
                 retry_after: float = 1.0,
                 max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
                 log: Callable[[str], None] = lambda line: None) -> None:
        """Wrap ``manager`` in the asyncio serving surface.

        Args:
            manager: the named-session registry to serve.
            retry_after: ``retry_after`` hint on hub-level refusals
                (session-level refusals carry the session's own).
            max_line_bytes: request frame cap on hub transports.
            log: sink for one-line operational notes.
        """
        self.manager = manager
        self.retry_after = retry_after
        self.max_line_bytes = max_line_bytes
        self._log = log
        self._writers: Dict[str, _Writer] = {}
        self._draining = False
        self._stop: Optional[asyncio.Event] = None
        self._served = 0
        registry = manager.metrics
        self._m_requests = registry.counter(
            "deltanet_requests_total",
            "Requests dispatched, by session and verb.",
            ("session", "verb"))
        self._m_rejected = registry.counter(
            "deltanet_rejected_total",
            "Requests refused before dispatch, by session and reason.",
            ("session", "reason"))
        self._m_connections = registry.counter(
            "deltanet_connections_total",
            "Connections accepted, by transport.",
            ("transport",))
        registry.gauge(
            "deltanet_open_sessions",
            "Sessions currently open in the hub.").watch(
            (), lambda: len(self.manager.open_names()))

    # -- lifecycle ---------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether the hub is refusing new work (stop requested)."""
        return self._draining

    def request_stop(self) -> None:
        """Refuse new work and wake :meth:`wait_stopped`.

        Safe from an asyncio signal handler; in-flight requests finish
        and every session is closed (final checkpoint) by
        :meth:`aclose`.
        """
        self._draining = True
        if self._stop is not None:
            self._stop.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`request_stop` (or a ``shutdown`` verb)."""
        if self._stop is None:
            self._stop = asyncio.Event()
        if self._draining:
            return
        await self._stop.wait()

    async def aclose(self) -> None:
        """Stop writer tasks, then close every session (checkpoints)."""
        self._draining = True
        writers = list(self._writers.values())
        self._writers.clear()
        for writer in writers:
            await writer.queue.put(None)
        for writer in writers:
            try:
                await asyncio.wait_for(writer.task, timeout=10)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                writer.task.cancel()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.manager.close_all)

    # -- request handling --------------------------------------------------------

    def oversized_response(self) -> Dict[str, Any]:
        """The answer for a frame longer than ``max_line_bytes``."""
        self._m_rejected.inc(session="_hub", reason="frame-too-large")
        return {"ok": False, "error": "frame too large",
                "max_line_bytes": self.max_line_bytes}

    async def handle_line(self, conn: HubConnection,
                          line: str) -> Tuple[Dict[str, Any], bool]:
        """Frame-check, parse and dispatch one request line.

        Args:
            conn: the connection's attachment state.
            line: one ndjson frame.

        Returns:
            ``(response, keep_going)``; an empty response (blank line)
            is skipped by the transports.
        """
        overlong = len(line) > self.max_line_bytes + 1
        if not overlong and len(line) * 4 > self.max_line_bytes + 1:
            overlong = (len(line.encode("utf-8", "replace"))
                        > self.max_line_bytes + 1)
        if overlong:
            return self.oversized_response(), True
        line = line.strip()
        if not line:
            return {}, True
        try:
            request = json.loads(line)
        except ValueError as exc:
            self._m_rejected.inc(session="_hub", reason="bad-json")
            return {"ok": False, "error": f"bad JSON: {exc}"}, True
        return await self.handle_request(conn, request)

    async def handle_request(self, conn: HubConnection,
                             request: Any) -> Tuple[Dict[str, Any], bool]:
        """Dispatch one parsed request: hub verb, write, or read.

        Args:
            conn: the connection's attachment state (mutated by
                ``open`` / ``attach`` / ``detach``).
            request: the decoded JSON value.

        Returns:
            ``(response, keep_going)`` — ``keep_going`` is False only
            for hub shutdown or drain; a single session's refusal
            never closes a multi-tenant connection.
        """
        if not isinstance(request, dict) \
                or not isinstance(request.get("cmd"), str):
            return {"ok": False,
                    "error": "bad request: expected an object with a "
                             "\"cmd\" string"}, True
        cmd = request["cmd"]
        self._served += 1
        target = request.get("session", conn.session)
        if target is not None and not isinstance(target, str):
            return {"ok": False, "error": "bad request: \"session\" "
                                          "must be a string"}, True
        if cmd == "metrics" and target is None:
            self._m_requests.inc(session="_hub", verb="metrics")
            return {"ok": True,
                    "metrics": self.manager.metrics.render_text()}, \
                not self._draining
        if cmd == "health" and target is None:
            self._m_requests.inc(session="_hub", verb="health")
            return self._hub_health(), not self._draining
        if self._draining:
            self._m_rejected.inc(session=target or "_hub",
                                 reason="draining")
            return {"ok": False, "error": "draining",
                    "retry_after": self.retry_after}, False
        if cmd == "sessions":
            self._m_requests.inc(session="_hub", verb="sessions")
            return {"ok": True, "sessions": self.manager.sessions()}, True
        if cmd in ("open", "attach"):
            return await self._open_or_attach(conn, cmd, request)
        if cmd == "detach":
            self._m_requests.inc(session="_hub", verb="detach")
            detached, conn.session = conn.session, None
            return {"ok": True, "detached": detached}, True
        if cmd == "shutdown":
            self._m_requests.inc(session="_hub", verb="shutdown")
            self.request_stop()
            return {"ok": True, "closing": True,
                    "sessions": self.manager.open_names()}, False
        # -- session-scoped verbs ----------------------------------------------
        if target is None:
            return {"ok": False,
                    "error": f"no session attached for {cmd!r}; send "
                             f"\"open\"/\"attach\" first or set "
                             f"\"session\""}, True
        loop = asyncio.get_running_loop()
        try:
            server = await loop.run_in_executor(
                None, self.manager.attach, target)
        except SessionError as exc:
            return {"ok": False, "error": str(exc)}, True
        if cmd in HUB_WRITE_CMDS:
            return await self._submit_write(server, request)
        response, _keep = await loop.run_in_executor(
            None, server.handle_request, request)
        return response, True

    async def _open_or_attach(self, conn: HubConnection, cmd: str,
                              request: Dict[str, Any]
                              ) -> Tuple[Dict[str, Any], bool]:
        """Open (create/recover) or attach; both bind the connection."""
        self._m_requests.inc(session="_hub", verb=cmd)
        name = request.get("session", request.get("name"))
        loop = asyncio.get_running_loop()
        try:
            if cmd == "open":
                overrides = {key: request[key]
                             for key in _OPEN_OVERRIDE_KEYS
                             if key in request}
                if "properties" in overrides:
                    overrides["properties"] = tuple(overrides["properties"])
                call = partial(self.manager.open, name, **overrides)
            else:
                call = partial(self.manager.attach, name)
            server = await loop.run_in_executor(None, call)
        except SessionError as exc:
            return {"ok": False, "error": str(exc)}, True
        conn.session = server.name
        self._ensure_writer(server)
        return {"ok": True, "session": server.name,
                "seq": server.session.sequence,
                "backend": server.session.backend_name,
                "recovered": server.recovery is not None}, True

    def _ensure_writer(self, server: StreamServer) -> _Writer:
        writer = self._writers.get(server.name)
        if writer is not None and not writer.task.done():
            return writer
        queue: asyncio.Queue = asyncio.Queue(
            maxsize=max(1, server.max_queue))
        task = asyncio.get_running_loop().create_task(
            self._writer_loop(server, queue))
        writer = _Writer(queue, task)
        self._writers[server.name] = writer
        return writer

    async def _writer_loop(self, server: StreamServer,
                           queue: "asyncio.Queue") -> None:
        """Apply one session's writes in arrival order, one at a time."""
        loop = asyncio.get_running_loop()
        while True:
            item = await queue.get()
            if item is None:
                queue.task_done()
                return
            request, future = item
            try:
                response, _keep = await loop.run_in_executor(
                    None, server.handle_request, request)
            except Exception as exc:  # the daemon survives any dispatch
                response = {"ok": False,
                            "error": f"{type(exc).__name__}: {exc}"}
            if not future.done():
                future.set_result(response)
            queue.task_done()

    async def _submit_write(self, server: StreamServer,
                            request: Dict[str, Any]
                            ) -> Tuple[Dict[str, Any], bool]:
        """Enqueue a mutating verb; a full queue is refused immediately."""
        writer = self._ensure_writer(server)
        future = asyncio.get_running_loop().create_future()
        try:
            writer.queue.put_nowait((request, future))
        except asyncio.QueueFull:
            self._m_rejected.inc(session=server.name, reason="overloaded")
            return {"ok": False, "error": "overloaded",
                    "queue_depth": writer.queue.qsize(),
                    "retry_after": server.retry_after}, True
        return await future, True

    def _hub_health(self) -> Dict[str, Any]:
        open_names = self.manager.open_names()
        return {"ok": True,
                "status": "draining" if self._draining else "ok",
                "hub": True,
                "sessions_open": len(open_names),
                "sessions": open_names,
                "served": self._served}

    # -- transports --------------------------------------------------------------

    async def serve_connection(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        """One TCP connection's request/response loop.

        Every response is drained to the socket before the next frame
        is read — a backpressure refusal (``overloaded``, ``busy``,
        ``frame too large``) reaches the client even though the hub
        immediately goes back to waiting on input.
        """
        self._m_connections.inc(transport="tcp")
        conn = HubConnection()
        framer = _AsyncLineFramer(reader, self.max_line_bytes)
        try:
            while True:
                line, oversized = await framer.next_frame()
                if line is None:
                    break
                if oversized:
                    response, keep_going = self.oversized_response(), True
                else:
                    response, keep_going = await self.handle_line(conn, line)
                if response:
                    writer.write(
                        (json.dumps(response) + "\n").encode("utf-8"))
                    await writer.drain()
                if not keep_going:
                    break
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            self._log(f"client disconnected mid-request: "
                      f"{type(exc).__name__}: {exc}")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass


async def serve_hub_tcp(hub: AsyncSessionHub, host: str = "127.0.0.1",
                        port: int = 0,
                        ready: Optional[Callable[[str, int], None]] = None,
                        install_signals: bool = False) -> None:
    """Serve the hub over asyncio TCP until ``shutdown`` (or SIGTERM).

    Args:
        hub: the session hub to serve.
        host: interface to bind.
        port: TCP port (0 picks a free one).
        ready: callback fired with the bound ``(host, port)``.
        install_signals: route SIGTERM/SIGINT into a graceful stop
            (skipped silently where the loop does not support it).
    """
    server = await asyncio.start_server(hub.serve_connection, host, port)
    if install_signals:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, hub.request_stop)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
    try:
        if ready is not None:
            bound = server.sockets[0].getsockname()
            ready(bound[0], bound[1])
        await hub.wait_stopped()
    finally:
        server.close()
        await server.wait_closed()
        await hub.aclose()


def serve_hub_stdio(hub: AsyncSessionHub, in_stream: IO[str],
                    out_stream: IO[str]) -> int:
    """The stdio compatibility loop for multi-tenant mode.

    The calling thread blocks on ``readline`` exactly like the
    single-session :func:`~repro.serve.stream.serve_stdio` (so SIGTERM
    can break the read via :class:`DrainRequested`), while a private
    event loop on a background thread runs the hub's writer tasks.
    Every response is written and flushed before the next read.

    Args:
        hub: the session hub to serve.
        in_stream: text stream of ndjson requests.
        out_stream: text stream responses are written to.

    Returns:
        The number of responses written.
    """
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    hub._m_connections.inc(transport="stdio")
    conn = HubConnection()
    served = 0

    def call(coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, loop).result()

    try:
        while True:
            line, oversized = _read_capped(
                in_stream.readline, hub.max_line_bytes, "\n")
            if not line:
                break
            if oversized:
                response, keep_going = hub.oversized_response(), True
            else:
                response, keep_going = call(hub.handle_line(conn, line))
            if response:
                out_stream.write(json.dumps(response) + "\n")
                out_stream.flush()
                served += 1
            if not keep_going:
                break
    except DrainRequested:
        pass
    finally:
        try:
            call(hub.aclose())
        except Exception as exc:
            hub._log(f"hub close failed: {type(exc).__name__}: {exc}")
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()
    return served
