"""Named verification sessions: one store, one daemon core per tenant.

A :class:`SessionManager` owns a *root* directory; every named session
lives in ``<root>/<name>/`` as an ordinary
:class:`~repro.persist.SessionStore` (snapshot + journal), wrapped in
its own :class:`~repro.serve.stream.StreamServer`.  Each session
therefore keeps the full single-tenant contract — crash-safe
persistence, per-session checkpoint and scrub tickers, admission
control, health — while the manager adds the multi-tenant concerns:
name validation (no path tricks), lazy recovery of sessions found on
disk, a shared :class:`~repro.serve.metrics.MetricsRegistry`, and a
coherent ``sessions`` listing.

Thread-safe: the asyncio hub opens and attaches sessions from
executor threads; creation is serialized on one manager lock and each
name maps to exactly one live server.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.serve.metrics import MetricsRegistry
from repro.serve.stream import StreamServer

#: Session names are one path component: alphanumeric start, then
#: alphanumerics, dots, underscores and dashes, at most 64 chars.
#: This (not escaping) is the defense against ``../`` store escapes.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}\Z")


class SessionError(ValueError):
    """A session operation failed (bad name, unknown session, closed)."""


def validate_session_name(name: Any) -> str:
    """Return ``name`` if it is a legal session name.

    Args:
        name: the candidate name from the wire.

    Returns:
        The validated name, unchanged.

    Raises:
        SessionError: not a string, empty, too long, or containing
            anything beyond ``[A-Za-z0-9._-]`` (first char must be
            alphanumeric, so ``.`` and ``..`` are impossible).
    """
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise SessionError(
            f"bad session name {name!r}: need 1-64 chars of "
            f"[A-Za-z0-9._-], starting with a letter or digit")
    return name


class SessionManager:
    """Open, look up, enumerate and close named sessions under a root.

    ``defaults`` are the :class:`StreamServer` keyword arguments every
    session is created with (engine, width, checkpoint cadence,
    backpressure limits, ...); per-``open`` overrides win over them.
    All sessions share this manager's metrics registry, so one
    ``metrics`` scrape covers every tenant.
    """

    def __init__(self, root: str, *,
                 metrics: Optional[MetricsRegistry] = None,
                 log: Callable[[str], None] = lambda line: None,
                 defaults: Optional[Dict[str, Any]] = None) -> None:
        """Create a manager over ``root`` (the directory is created).

        Args:
            root: directory holding one subdirectory per session.
            metrics: shared registry (a fresh one when ``None``).
            log: sink for operational notes; lines are prefixed with
                the session name they concern.
            defaults: baseline ``StreamServer`` keyword arguments.
        """
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._log = log
        self._defaults = dict(defaults or {})
        self._lock = threading.Lock()
        self._servers: Dict[str, StreamServer] = {}
        self._closed = False

    def open(self, name: str, **overrides: Any) -> StreamServer:
        """Open (create or recover) the session called ``name``.

        Idempotent: an already-open session is returned as-is (the
        overrides are ignored — the running daemon's configuration
        wins).  A session directory already on disk is recovered.

        Args:
            name: the session name (validated).
            **overrides: ``StreamServer`` keyword arguments layered
                over the manager defaults for a newly opened session.

        Returns:
            The live :class:`StreamServer` for ``name``.

        Raises:
            SessionError: bad name, or the manager is closed.
        """
        name = validate_session_name(name)
        with self._lock:
            if self._closed:
                raise SessionError("session manager is closed")
            server = self._servers.get(name)
            if server is None:
                options = dict(self._defaults)
                options.update(overrides)
                options.pop("name", None)
                options.pop("metrics", None)
                log = self._log

                def prefixed(line: str, _name: str = name) -> None:
                    log(f"[{_name}] {line}")

                options.setdefault("log", prefixed)
                server = StreamServer(
                    os.path.join(self.root, name), name=name,
                    metrics=self.metrics, **options)
                self._servers[name] = server
            return server

    def attach(self, name: str) -> StreamServer:
        """Return the open session ``name``, recovering it from disk if
        its store exists but is not currently open.

        Args:
            name: the session name (validated).

        Returns:
            The live :class:`StreamServer`.

        Raises:
            SessionError: bad name, no such session in memory or on
                disk, or the manager is closed.
        """
        name = validate_session_name(name)
        with self._lock:
            server = self._servers.get(name)
        if server is not None:
            return server
        if name not in self.discover():
            raise SessionError(
                f"unknown session {name!r}; open it first "
                f"(known: {', '.join(self.discover()) or 'none'})")
        return self.open(name)

    def get(self, name: str) -> StreamServer:
        """Return the *already open* session ``name``.

        Raises:
            SessionError: the session is not open (use :meth:`attach`
                to recover one from disk).
        """
        with self._lock:
            server = self._servers.get(name)
        if server is None:
            raise SessionError(f"session {name!r} is not open")
        return server

    def discover(self) -> List[str]:
        """Session names present on disk (open or not), sorted."""
        from repro.persist.store import SNAPSHOT_NAME

        names = []
        try:
            entries = sorted(os.listdir(self.root))
        except OSError:
            return []
        for entry in entries:
            if not _NAME_RE.match(entry):
                continue
            if os.path.exists(os.path.join(self.root, entry, SNAPSHOT_NAME)):
                names.append(entry)
        return names

    def open_names(self) -> List[str]:
        """Names of currently open sessions, sorted."""
        with self._lock:
            return sorted(self._servers)

    def sessions(self) -> List[Dict[str, Any]]:
        """One summary dict per known session (open first, then
        on-disk-only), for the ``sessions`` protocol verb.
        """
        with self._lock:
            open_servers = dict(self._servers)
        listing = []
        for name in sorted(open_servers):
            server = open_servers[name]
            listing.append({
                "session": name,
                "open": True,
                "seq": server.session.sequence,
                "rules": server.session.num_rules,
                "backend": server.session.backend_name,
                "queue_depth": server._waiters,
                "draining": server.draining,
                "watching": [p.name for p in server.session.properties],
            })
        for name in self.discover():
            if name not in open_servers:
                listing.append({"session": name, "open": False})
        return listing

    def close(self, name: str) -> bool:
        """Close one session (final checkpoint); returns whether it was
        open.
        """
        with self._lock:
            server = self._servers.pop(name, None)
        if server is None:
            return False
        server.close()
        return True

    def close_all(self) -> None:
        """Close every open session (final checkpoints); idempotent, and
        the manager refuses new opens afterwards.
        """
        with self._lock:
            self._closed = True
            servers = list(self._servers.items())
            self._servers.clear()
        for _name, server in servers:
            try:
                server.close()
            except Exception as exc:
                self._log(f"[{_name}] close failed: "
                          f"{type(exc).__name__}: {exc}")

    def __enter__(self) -> "SessionManager":
        """Context-manager entry: the manager itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: :meth:`close_all`."""
        self.close_all()
