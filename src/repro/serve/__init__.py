"""``deltanet serve`` — the streaming verification serving layer.

A package of four layers (see ``docs/architecture.md``):

- :mod:`repro.serve.stream` — :class:`StreamServer`, the single-tenant
  daemon core: one checkpointed session, the ndjson command surface,
  admission control and the synchronous stdio/TCP transports;
- :mod:`repro.serve.sessions` — :class:`SessionManager`, named
  per-tenant sessions under one root directory;
- :mod:`repro.serve.aio` — :class:`AsyncSessionHub`, the multi-tenant
  asyncio transport (one writer task per session, concurrent readers);
- :mod:`repro.serve.metrics` — :class:`MetricsRegistry`, the counters,
  histograms and gauges behind the ``metrics`` verb.

The wire protocol every layer speaks is specified, verb by verb, in
``docs/protocol.md`` — and the examples there are executed against a
live daemon by the doc-conformance test suite.

Everything the pre-package ``repro.serve`` module exported is
re-exported here unchanged.
"""

from repro.serve.aio import (
    AsyncSessionHub, HubConnection, HUB_WRITE_CMDS, serve_hub_stdio,
    serve_hub_tcp,
)
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.sessions import (
    SessionError, SessionManager, validate_session_name,
)
from repro.serve.stream import (
    DEFAULT_MAX_LINE_BYTES, DrainRequested, LOCK_FREE_CMDS, ReadWriteLock,
    StreamServer, WRITE_CMDS, _jsonable, _read_capped, _violation_payload,
    attach_controller, install_sigterm_drain, request_over_socket,
    rule_from_payload, serve_socket, serve_stdio, wait_until_idle,
)

__all__ = [
    "AsyncSessionHub",
    "Counter",
    "DEFAULT_MAX_LINE_BYTES",
    "DrainRequested",
    "Gauge",
    "Histogram",
    "HubConnection",
    "HUB_WRITE_CMDS",
    "LOCK_FREE_CMDS",
    "MetricsRegistry",
    "ReadWriteLock",
    "SessionError",
    "SessionManager",
    "StreamServer",
    "WRITE_CMDS",
    "attach_controller",
    "install_sigterm_drain",
    "request_over_socket",
    "rule_from_payload",
    "serve_hub_stdio",
    "serve_hub_tcp",
    "serve_socket",
    "serve_stdio",
    "validate_session_name",
    "wait_until_idle",
]
