"""One checkpointed verification session behind a line protocol.

:class:`StreamServer` is the single-tenant core of ``deltanet
serve``: it owns one checkpointed
:class:`~repro.api.session.VerificationSession`, applies updates
streamed to it as newline-delimited JSON, answers property queries,
journals every update, and writes background snapshots — so a ``kill
-9`` mid-stream loses nothing: the next start recovers ``snapshot +
journal tail`` and continues at the exact sequence number it died at.
The multi-tenant layers (:mod:`repro.serve.sessions`,
:mod:`repro.serve.aio`) compose many of these, one per named session.

See ``docs/protocol.md`` for the complete wire protocol: framing
rules, every verb's request/response schema, and the error envelopes
(``busy`` / ``overloaded`` / ``frame too large`` / ``draining``, all
carrying ``retry_after``).

Concurrency model: commands that mutate the session (``insert``,
``remove``, ``batch``, ``watch``, ``checkpoint``, ``audit``) take the
session's *write* lock, so updates, checkpoints and scrub steps
serialize.  Speculative verbs (``speculate`` / ``commit`` /
``discard``) and any request addressed to a speculative child (a
``spec`` key) are writes too: the children share ownership structures
with the parent copy-on-write, so their mutations must not race
parent updates.  Read-only commands (``query``, ``violations``, ``stats``,
``ping``) take the *read* side and run concurrently with each other —
on backends that declare ``concurrent_read_safe`` (pure in-process
traversals); backends whose queries fan out over worker pipes fall
back to exclusive access.  ``health`` and ``metrics`` take no session
lock at all, so the daemon stays observable while an update runs (or
a shard worker is wedged).
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Tuple

from repro.api import (
    FlowsOn, LinkDown, Loops, PROPERTY_TYPES, Reachable, SpeculativeSession,
    VerificationSession, Violation, query_from_payload,
)
from repro.core.rules import Action, Rule
from repro.datasets.format import Op
from repro.integrity import Scrubber
from repro.persist import RecoveryInfo, SessionStore
from repro.serve.metrics import MetricsRegistry

#: Default cap on one request frame.  A line longer than this is
#: answered with ``{"ok": false, "error": "frame too large"}`` and
#: drained without ever being buffered whole — a runaway (or hostile)
#: client cannot balloon the daemon's memory with one giant line.
DEFAULT_MAX_LINE_BYTES = 1 << 20

#: Commands that mutate session state and therefore need the write
#: (exclusive) side of the session lock.  Everything else is a read.
WRITE_CMDS = frozenset({
    "insert", "remove", "batch", "watch", "checkpoint", "audit",
    "speculate", "commit", "discard", "shutdown",
})

#: Commands answered without taking the session lock at all.
LOCK_FREE_CMDS = frozenset({"health", "metrics"})


class DrainRequested(Exception):
    """Raised in the transport loop when SIGTERM asks for a drain."""


class ReadWriteLock:
    """A writer-preferring reader/writer lock with timeouts.

    Many readers may hold the lock together; a writer holds it alone.
    Waiting writers block *new* readers (writer preference), so a
    steady query stream cannot starve updates.  The write side is
    reentrant per-thread, and a thread holding the write lock may take
    the read side without deadlocking (it is counted as nested write
    depth) — mirroring the RLock semantics the single-lock server had.
    """

    def __init__(self) -> None:
        """Create an unheld lock."""
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer: Optional[threading.Thread] = None
        self._writer_depth = 0
        self._writers_waiting = 0

    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        """Acquire shared access; returns False on timeout."""
        me = threading.current_thread()
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            if self._writer is me:
                self._writer_depth += 1
                return True
            while self._writer is not None or self._writers_waiting:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            self._readers += 1
            return True

    def release_read(self) -> None:
        """Release shared access (or one nested write-side hold)."""
        me = threading.current_thread()
        with self._cond:
            if self._writer is me:
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
                    self._cond.notify_all()
                return
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        """Acquire exclusive access; returns False on timeout."""
        me = threading.current_thread()
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            if self._writer is me:
                self._writer_depth += 1
                return True
            self._writers_waiting += 1
            try:
                while self._readers or self._writer is not None:
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        return False
                    self._cond.wait(remaining)
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1
            return True

    def release_write(self) -> None:
        """Release exclusive access (one level of reentrancy)."""
        with self._cond:
            if self._writer is not threading.current_thread():
                raise RuntimeError("release_write by a non-owning thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()


class _WriteLockFacade:
    """``server._lock`` compatibility: the exclusive side as a plain lock.

    Pre-package code (and the fault-injection tests) wedge the daemon
    with ``with server._lock: ...`` and expect lock-free ``health`` to
    keep answering; this object preserves that surface over the
    reader/writer lock.
    """

    def __init__(self, rw: ReadWriteLock) -> None:
        self._rw = rw

    def acquire(self, timeout: Optional[float] = None) -> bool:
        """Acquire the write side; returns False on timeout."""
        return self._rw.acquire_write(timeout)

    def release(self) -> None:
        """Release the write side."""
        self._rw.release_write()

    def __enter__(self) -> "_WriteLockFacade":
        self._rw.acquire_write()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._rw.release_write()


def _jsonable(value: Any) -> Any:
    """Best-effort JSON projection of protocol payloads (cycles, spans)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_jsonable(item) for item in value), key=repr)
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


def _violation_payload(violation: Violation) -> Dict[str, Any]:
    return {"property": violation.property_name,
            "signature": _jsonable(violation.signature),
            "detail": violation.detail}


def rule_from_payload(session: VerificationSession,
                      payload: Dict[str, Any]) -> Rule:
    """Build a rule from a request dict (CIDR ``prefix`` or ``lo``/``hi``).

    Args:
        session: the session whose width validates a ``prefix`` form.
        payload: the wire ``rule`` object — ``rid``, ``priority``,
            ``source``, either ``prefix`` or ``lo``/``hi``, optional
            ``target`` and ``action`` (``"forward"`` default,
            ``"drop"``).

    Returns:
        The constructed :class:`~repro.core.rules.Rule`.

    Raises:
        KeyError: a required field is missing.
        ValueError: the prefix does not parse or is out of range.
    """
    action = (Action.DROP if payload.get("action") == "drop"
              else Action.FORWARD)
    if "prefix" in payload:
        return session.make_rule(
            payload["rid"], payload["prefix"], payload["priority"],
            payload["source"], payload.get("target"), action)
    if action is Action.DROP:
        return Rule.drop(payload["rid"], payload["lo"], payload["hi"],
                         payload["priority"], payload["source"])
    return Rule.forward(payload["rid"], payload["lo"], payload["hi"],
                        payload["priority"], payload["source"],
                        payload["target"])


class StreamServer:
    """One checkpointed session behind a line-oriented command surface.

    Thread-safe: transports may dispatch from several connections.
    Mutating commands serialize on the session's write lock; read-only
    commands share the read side (see the module docstring for the
    exact split).  ``checkpoint_every`` bounds journal-replay work
    after a crash; ``checkpoint_interval`` (seconds) additionally
    snapshots quiet sessions in the background.

    Backpressure: ``max_queue`` bounds how many requests may wait for
    the session lock at once and ``request_timeout`` how long one may
    wait; breaching either yields an immediate ``retry_after`` error
    response instead of an unbounded queue.  (The timeout bounds time
    *waiting to start* — Python cannot abort a dispatch already
    running; runaway worker commands are bounded separately by the
    parallel backend's per-request ``deadline``.)

    ``name`` identifies this session in multi-tenant deployments and
    labels every metric sample; ``metrics`` shares one
    :class:`~repro.serve.metrics.MetricsRegistry` across sessions (a
    private registry is created when omitted).
    """

    def __init__(self, store_dir: str, engine: str = "deltanet",
                 width: int = 32, checkpoint_every: int = 1000,
                 checkpoint_interval: Optional[float] = None,
                 properties: Iterable[str] = ("loops",),
                 log: Callable[[str], None] = lambda line: None,
                 request_timeout: Optional[float] = None,
                 max_queue: int = 64,
                 retry_after: float = 1.0,
                 max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
                 scrub_interval: Optional[float] = None,
                 scrub_budget: int = 4096,
                 name: str = "default",
                 metrics: Optional[MetricsRegistry] = None,
                 **backend_options: Any) -> None:
        """Recover (or create) the session under ``store_dir`` and start
        the background checkpoint/scrub tickers when configured.

        Args:
            store_dir: checkpoint/journal directory; recovered from
                when it already holds state (``engine`` is then
                ignored in favor of the store's backend).
            engine: backend registry name for a fresh session.
            width: packet header width in bits for a fresh session.
            checkpoint_every: snapshot after this many journaled ops.
            checkpoint_interval: also snapshot every this many seconds
                in the background (``None`` disables the ticker).
            properties: property names watched on a fresh session (and
                added, with a checkpoint, to a recovered one).
            log: sink for one-line operational notes.
            request_timeout: max seconds a request may wait for the
                session lock before an immediate ``busy`` response
                (``None`` waits forever).
            max_queue: max requests waiting for the session before
                ``overloaded`` backpressure.
            retry_after: the ``retry_after`` hint (seconds) carried by
                backpressure responses.
            max_line_bytes: request frame cap; longer lines are
                refused with ``frame too large``.
            scrub_interval: run one budgeted integrity-scrub step every
                this many seconds (``None`` disables the ticker).
            scrub_budget: max digest entries re-verified per scrub step.
            name: session name (multi-tenant identity; metrics label).
            metrics: shared registry; a private one when ``None``.
            **backend_options: forwarded to the backend factory.

        Raises:
            repro.persist.CorruptStoreError: the store exists but fails
                its integrity checks and cannot be recovered.
        """
        self._rw = ReadWriteLock()
        self._lock = _WriteLockFacade(self._rw)
        self._log = log
        self.name = name
        self.checkpoint_every = checkpoint_every
        self.request_timeout = request_timeout
        self.max_queue = max_queue
        self.retry_after = retry_after
        self.max_line_bytes = max_line_bytes
        self._admission = threading.Lock()
        self._waiters = 0
        self._draining = False
        self._busy = False
        self._closed = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._specs: Dict[str, SpeculativeSession] = {}
        self._spec_counter = 0
        self._instrument()
        self.store = SessionStore(store_dir)
        self.recovery: Optional[RecoveryInfo] = None
        if self.store.exists():
            self.session, self.recovery = self.store.recover(
                **backend_options)
            log(f"recovered sequence {self.recovery.sequence} "
                f"(snapshot {self.recovery.snapshot_sequence} + "
                f"{self.recovery.replayed} journaled ops"
                + (", torn tail truncated)" if self.recovery.torn_tail
                   else ")"))
            if engine not in (self.session.backend_name, "deltanet"):
                log(f"note: store was written by backend "
                    f"{self.session.backend_name!r}; requested "
                    f"--engine {engine!r} is ignored on recovery")
            # Subscriptions live in the snapshot; requested properties
            # the recovered session is not yet watching are added (and
            # checkpointed) rather than silently dropped.
            watching = {p.name for p in self.session.properties}
            missing = [name for name in properties if name not in watching]
            for prop_name in missing:
                self._watch(prop_name, {})
            if missing:
                log(f"watching additionally requested properties: "
                    f"{', '.join(missing)}")
            if missing or self.recovery.replayed:
                self.store.checkpoint(self.session)
        else:
            self.session = VerificationSession(engine, width=width,
                                               **backend_options)
            for prop_name in properties:
                self._watch(prop_name, {})
            self.store.checkpoint(self.session)
            log(f"fresh session ({engine}, width={width}) in {store_dir}")
        # Pure in-process backends declare their queries read-safe;
        # anything else (worker pipes) keeps reads exclusive.
        self._reads_shared = bool(getattr(
            self.session.backend, "concurrent_read_safe", False))
        self._last_checkpoint = self.session.sequence
        self.scrubber = Scrubber(self.session, entries_per_step=scrub_budget)
        self._m_sequence.watch((self.name,), lambda: self.session.sequence)
        self._shutdown = threading.Event()
        self._ticker: Optional[threading.Thread] = None
        if checkpoint_interval:
            self._ticker = threading.Thread(
                target=self._background_checkpoints,
                args=(checkpoint_interval,), daemon=True)
            self._ticker.start()
        self._scrub_ticker: Optional[threading.Thread] = None
        if scrub_interval:
            self._scrub_ticker = threading.Thread(
                target=self._background_scrub,
                args=(scrub_interval,), daemon=True)
            self._scrub_ticker.start()

    # -- lifecycle ---------------------------------------------------------------

    def _instrument(self) -> None:
        """Register this session's instruments on the shared registry."""
        registry = self.metrics
        self._m_requests = registry.counter(
            "deltanet_requests_total",
            "Requests dispatched, by session and verb.",
            ("session", "verb"))
        self._m_rejected = registry.counter(
            "deltanet_rejected_total",
            "Requests refused before dispatch, by session and reason.",
            ("session", "reason"))
        self._m_errors = registry.counter(
            "deltanet_errors_total",
            "Dispatches that raised, by session and verb.",
            ("session", "verb"))
        self._m_violations = registry.counter(
            "deltanet_violations_total",
            "Property violations delivered, by session.",
            ("session",))
        self._m_checkpoints = registry.counter(
            "deltanet_checkpoints_total",
            "Snapshots written, by session.",
            ("session",))
        self._m_latency = registry.histogram(
            "deltanet_request_seconds",
            "Dispatch latency in seconds, by session and verb.",
            ("session", "verb"))
        self._m_sequence = registry.gauge(
            "deltanet_session_sequence",
            "Current committed sequence number, by session.",
            ("session",))

    def _background_checkpoints(self, interval: float) -> None:
        while not self._shutdown.wait(interval):
            try:
                with self._lock:
                    if self.session.sequence > self._last_checkpoint:
                        self._checkpoint()
            except Exception as exc:
                # A transient failure (disk full, fs hiccup) must not
                # kill the ticker — durability degrades for one tick,
                # loudly, instead of silently forever.
                self._log(f"background checkpoint failed: "
                          f"{type(exc).__name__}: {exc}")

    def _background_scrub(self, interval: float) -> None:
        """One budgeted scrub step per tick, interleaving with requests.

        Each step verifies at most ``scrub_budget`` digest entries under
        the session lock, so the audit shares the session fairly with
        traffic instead of stalling it for a whole pass.  A pass that
        ends unclean (mismatch detected, repair or escalation recorded
        in the scrubber's counters) is logged; the counters themselves
        surface through ``health``.
        """
        while not self._shutdown.wait(interval):
            try:
                with self._lock:
                    progress = self.scrubber.step()
                if progress.get("pass_complete"):
                    report = self.scrubber.last_report
                    if report is not None and not report.ok:
                        self._log(f"background scrub found problems: "
                                  f"{dict(report)}")
            except Exception as exc:
                # Same contract as the checkpoint ticker: a failing
                # scrub step degrades auditing for one tick, loudly.
                self._log(f"background scrub failed: "
                          f"{type(exc).__name__}: {exc}")

    def _checkpoint(self) -> int:
        sequence = self.store.checkpoint(self.session)
        self._last_checkpoint = sequence
        self._m_checkpoints.inc(session=self.name)
        self._log(f"checkpoint at sequence {sequence}")
        return sequence

    def close(self) -> None:
        """Clean shutdown: final checkpoint, stop the tickers, reap
        workers, release the metric gauge.  Idempotent — the drain path
        and a ``finally`` may both reach it.
        """
        if self._closed:
            return
        self._closed = True
        self._shutdown.set()
        if self._ticker is not None:
            self._ticker.join(timeout=5)
        if self._scrub_ticker is not None:
            self._scrub_ticker.join(timeout=5)
        with self._lock:
            for child in self._specs.values():
                child.discard()
            self._specs.clear()
            if self.session.sequence > self._last_checkpoint:
                self._checkpoint()
            self.store.close()
            self.session.close()
        self._m_sequence.unwatch((self.name,))

    def request_drain(self) -> None:
        """Stop admitting work; the transport loop exits after the
        in-flight request and the caller's ``close()`` writes the final
        checkpoint.  Safe from a signal handler.
        """
        self._draining = True

    @property
    def draining(self) -> bool:
        """Whether a drain was requested (new work is being refused)."""
        return self._draining

    # -- command dispatch --------------------------------------------------------

    def oversized_response(self) -> Dict[str, Any]:
        """The answer for a frame longer than ``max_line_bytes``."""
        self._m_rejected.inc(session=self.name, reason="frame-too-large")
        return {"ok": False, "error": "frame too large",
                "max_line_bytes": self.max_line_bytes}

    def handle_line(self, line: str) -> Tuple[Dict[str, Any], bool]:
        """Process one raw request line.

        Args:
            line: one ndjson frame (the trailing newline may be
                included).

        Returns:
            ``(response, keep_going)`` — the JSON-serializable response
            object (empty dict for a blank line, which transports skip)
            and whether the connection should stay open.
        """
        # The frame cap is in *bytes*; text transports hand us str, so
        # re-measure in UTF-8 when the character count alone cannot
        # prove the line fits (multi-byte characters must not let a
        # frame 4x the cap sneak past a character-based check).
        overlong = len(line) > self.max_line_bytes + 1
        if not overlong and len(line) * 4 > self.max_line_bytes + 1:
            overlong = (len(line.encode("utf-8", "replace"))
                        > self.max_line_bytes + 1)
        if overlong:  # +1 above allows for the newline
            return self.oversized_response(), True
        line = line.strip()
        if not line:
            return {}, True
        try:
            request = json.loads(line)
        except ValueError as exc:
            self._m_rejected.inc(session=self.name, reason="bad-json")
            return {"ok": False, "error": f"bad JSON: {exc}"}, True
        return self.handle_request(request)

    def handle_request(self, request: Any) -> Tuple[Dict[str, Any], bool]:
        """Admit, lock and dispatch one parsed request object.

        This is the transport-independent entry point (the asyncio hub
        calls it from executor threads with already-parsed frames).
        Lock-free commands (``health``, ``metrics``) answer
        immediately; everything else passes admission control
        (``max_queue`` → ``overloaded``), acquires the read or write
        side of the session lock (``request_timeout`` → ``busy``) and
        dispatches.

        Args:
            request: the decoded JSON value; anything but an object
                with a ``cmd`` string is answered with an error.

        Returns:
            ``(response, keep_going)`` exactly as :meth:`handle_line`.
        """
        cmd = request.get("cmd") if isinstance(request, dict) else None
        if cmd == "health":
            # Deliberately lock-free: health must answer while an
            # update holds the session (or a worker is wedged).  The
            # fields are snapshots, racy by design.
            self._m_requests.inc(session=self.name, verb="health")
            return self._health(), not self._draining
        if cmd == "metrics":
            self._m_requests.inc(session=self.name, verb="metrics")
            return {"ok": True,
                    "metrics": self.metrics.render_text()}, \
                not self._draining
        if self._draining:
            self._m_rejected.inc(session=self.name, reason="draining")
            return {"ok": False, "error": "draining",
                    "retry_after": self.retry_after}, False
        with self._admission:
            if self._waiters >= self.max_queue:
                self._m_rejected.inc(session=self.name, reason="overloaded")
                return {"ok": False, "error": "overloaded",
                        "queue_depth": self._waiters,
                        "retry_after": self.retry_after}, True
            self._waiters += 1
        exclusive = (cmd in WRITE_CMDS or not self._reads_shared
                     or (isinstance(request, dict) and "spec" in request))
        acquired = False
        try:
            if exclusive:
                acquired = self._rw.acquire_write(self.request_timeout)
            else:
                acquired = self._rw.acquire_read(self.request_timeout)
            if not acquired:
                self._m_rejected.inc(session=self.name, reason="busy")
                return {"ok": False,
                        "error": f"busy: session held longer than "
                                 f"{self.request_timeout}s",
                        "retry_after": self.retry_after}, True
            self._busy = True
            started = time.perf_counter()
            try:
                response, keep_going = self._dispatch(request)
            finally:
                self._busy = False
            verb = cmd if isinstance(cmd, str) else "invalid"
            self._m_requests.inc(session=self.name, verb=verb)
            self._m_latency.observe(time.perf_counter() - started,
                                    session=self.name, verb=verb)
            # A drain that arrived mid-dispatch still gets this
            # request's real response; the transport exits afterwards.
            return response, keep_going and not self._draining
        except Exception as exc:  # protocol errors must not kill the daemon
            self._m_errors.inc(
                session=self.name,
                verb=cmd if isinstance(cmd, str) else "invalid")
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}, True
        finally:
            if acquired:
                if exclusive:
                    self._rw.release_write()
                else:
                    self._rw.release_read()
            with self._admission:
                self._waiters -= 1

    def _health(self) -> Dict[str, Any]:
        backend_health: Dict[str, Any] = {}
        getter = getattr(self.session.backend, "health", None)
        if callable(getter):
            try:
                backend_health = dict(getter())
            except Exception as exc:
                backend_health = {"error": f"{type(exc).__name__}: {exc}"}
        status = "ok"
        if backend_health.get("degraded"):
            status = "degraded"
        if self._draining:
            status = "draining"
        return {
            "ok": True,
            "status": status,
            "session": self.name,
            "seq": self.session.sequence,
            "backend": self.session.backend_name,
            "draining": self._draining,
            "queue_depth": self._waiters,
            "max_queue": self.max_queue,
            "request_timeout": self.request_timeout,
            "last_checkpoint": self._last_checkpoint,
            "scrub": _jsonable(self.scrubber.status()),
            "workers": _jsonable(backend_health),
        }

    def apply_op(self, op: Op) -> Dict[str, Any]:
        """Apply one dataset op under the write lock (the SDN-bridge
        entry point).

        Args:
            op: the :class:`~repro.datasets.format.Op` to apply.

        Returns:
            The protocol update response (``seq``, ``violations``,
            ``latency_us``).
        """
        self._rw.acquire_write()
        try:
            return self._apply_op_locked(op)
        finally:
            self._rw.release_write()

    def _apply_op_locked(self, op: Op) -> Dict[str, Any]:
        """The journaled update path; caller holds the write lock."""
        result = self.session.apply(op)
        self.store.record(op, self.session.sequence)
        self._maybe_checkpoint()
        return self._update_response(result)

    def _maybe_checkpoint(self) -> None:
        if self.session.sequence - self._last_checkpoint \
                >= self.checkpoint_every:
            self._checkpoint()

    def _update_response(self, result) -> Dict[str, Any]:
        if result.violations:
            self._m_violations.inc(len(result.violations),
                                   session=self.name)
        return {
            "ok": True,
            "seq": self.session.sequence,
            "violations": [_violation_payload(v) for v in result.violations],
            "latency_us": round(result.latency * 1e6, 1),
        }

    def _watch(self, name: str, args: Dict[str, Any]) -> bool:
        """Subscribe a property; idempotent — an identical subscription
        (same name and spec) is not added twice, so a defensive
        re-watch after a client reconnect cannot double every future
        violation delivery.  Returns whether anything was added.
        """
        from repro.api.properties import property_spec

        cls = PROPERTY_TYPES.get(name)
        if cls is None:
            raise ValueError(
                f"unknown property {name!r}; known: "
                f"{', '.join(sorted(PROPERTY_TYPES))}")
        candidate = cls(**args)
        spec = property_spec(candidate)
        for existing in self.session.properties:
            if (getattr(existing, "name", None) == name
                    and property_spec(existing) == spec):
                return False
        self.session.watch(candidate)
        return True

    def _dispatch(self, request: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        cmd = request.get("cmd")
        if cmd == "speculate":
            spec_id = f"spec-{self._spec_counter}"
            self._spec_counter += 1
            self._specs[spec_id] = self.session.speculate()
            return {"ok": True, "seq": self.session.sequence,
                    "spec": spec_id}, True
        if cmd == "commit":
            return self._commit_spec(request["spec"]), True
        if cmd == "discard":
            spec_id = request["spec"]
            child = self._specs.pop(spec_id, None)
            if child is None:
                return {"ok": False,
                        "error": f"unknown speculation {spec_id!r}"}, True
            child.discard()
            return {"ok": True, "seq": self.session.sequence,
                    "spec": spec_id, "discarded": True}, True
        if "spec" in request:
            return self._dispatch_speculative(cmd, request), True
        if cmd == "insert":
            rule = rule_from_payload(self.session, request["rule"])
            return self._apply_op_locked(Op.insert(rule)), True
        if cmd == "remove":
            return self._apply_op_locked(Op.remove(request["rid"])), True
        if cmd == "batch":
            inserts = [rule_from_payload(self.session, payload)
                       for payload in request.get("insert", ())]
            removals = list(request.get("remove", ()))
            result = self.session.apply_batch(inserts, removals)
            ops = [Op.remove(rid) for rid in removals]
            ops += [Op.insert(rule) for rule in inserts]
            if ops:  # an empty batch is a legal no-op, nothing to journal
                self.store.record_batch(ops, self.session.sequence)
                self._maybe_checkpoint()
            return self._update_response(result), True
        if cmd == "watch":
            if self._watch(request["property"], request.get("args", {})):
                # Subscriptions live in the snapshot, not the journal —
                # checkpoint now so a crash cannot forget the watch.
                self._checkpoint()
            return {"ok": True, "seq": self.session.sequence,
                    "watching": [p.name for p in self.session.properties]}, True
        if cmd == "query":
            if "query" in request:
                result = self.session.query(
                    query_from_payload(request["query"]))
                return {"ok": True, "seq": self.session.sequence,
                        "result": _jsonable(result.to_payload())}, True
            return {"ok": True, "seq": self.session.sequence,
                    "result": self._query(self.session, request)}, True
        if cmd == "violations":
            return {"ok": True, "seq": self.session.sequence,
                    "violations": [_violation_payload(v)
                                   for v in self.session.violations()]}, True
        if cmd == "stats":
            stats = dict(self.session.stats())
            stats["sequence"] = self.session.sequence
            stats["watching"] = [p.name for p in self.session.properties]
            digest = self.session.state_digest()
            if digest is not None:
                stats["state_digest"] = digest
            return {"ok": True, "stats": _jsonable(stats)}, True
        if cmd == "checkpoint":
            return {"ok": True, "seq": self._checkpoint()}, True
        if cmd == "audit":
            # One full scrub pass, synchronously, under the session
            # lock the dispatcher already holds — the response reports
            # exactly the state the pass verified.
            report = self.scrubber.run_full()
            return {"ok": True, "seq": self.session.sequence,
                    "clean": report.ok,
                    "digest": self.session.state_digest(),
                    "report": _jsonable(dict(report)),
                    "scrub": _jsonable(self.scrubber.status())}, True
        if cmd == "ping":
            return {"ok": True, "seq": self.session.sequence}, True
        if cmd == "shutdown":
            return {"ok": True, "seq": self.session.sequence,
                    "closing": True}, False
        return {"ok": False, "error": f"unknown cmd {cmd!r}"}, True

    def _commit_spec(self, spec_id: str) -> Dict[str, Any]:
        """Replay a speculative child's buffered ops through the
        journaled update path, then discard the child.  Every replayed
        op is recorded exactly as a direct update would be, so the
        committed state survives a crash like any other.
        """
        child = self._specs.get(spec_id)
        if child is None:
            return {"ok": False, "error": f"unknown speculation {spec_id!r}"}
        child.assert_fresh()
        ops = child.buffered_ops()
        del self._specs[spec_id]
        try:
            responses = [self._apply_op_locked(op) for op in ops]
        finally:
            child.discard()
        violations = [v for response in responses
                      for v in response["violations"]]
        return {"ok": True, "seq": self.session.sequence, "spec": spec_id,
                "committed": len(ops), "violations": violations}

    def _dispatch_speculative(self, cmd: Any,
                              request: Dict[str, Any]) -> Dict[str, Any]:
        """Route an update or query to a named speculative child.

        Speculative updates are *not* journaled — they exist only in
        the child until ``commit`` replays them through the durable
        path — so the response reports the buffered-op count instead
        of a committed sequence number.
        """
        spec_id = request["spec"]
        child = self._specs.get(spec_id)
        if child is None:
            return {"ok": False, "error": f"unknown speculation {spec_id!r}"}
        if cmd == "insert":
            rule = rule_from_payload(child, request["rule"])
            return self._spec_update_response(spec_id, child,
                                              child.insert(rule))
        if cmd == "remove":
            return self._spec_update_response(spec_id, child,
                                              child.remove(request["rid"]))
        if cmd == "batch":
            inserts = [rule_from_payload(child, payload)
                       for payload in request.get("insert", ())]
            removals = list(request.get("remove", ()))
            result = child.apply_batch(inserts, removals)
            return self._spec_update_response(spec_id, child, result)
        if cmd == "query":
            if "query" in request:
                result = child.query(query_from_payload(request["query"]))
                return {"ok": True, "spec": spec_id,
                        "result": _jsonable(result.to_payload())}
            return {"ok": True, "spec": spec_id,
                    "result": self._query(child, request)}
        return {"ok": False,
                "error": f"cmd {cmd!r} cannot target a speculation"}

    def _spec_update_response(self, spec_id: str, child: SpeculativeSession,
                              result) -> Dict[str, Any]:
        return {
            "ok": True,
            "spec": spec_id,
            "buffered": len(child.buffered_ops()),
            "violations": [_violation_payload(v) for v in result.violations],
            "latency_us": round(result.latency * 1e6, 1),
        }

    def _query(self, session: VerificationSession,
               request: Dict[str, Any]) -> Any:
        what = request.get("what")
        if what == "loops":
            return [_jsonable(cycle)
                    for cycle in session.query(Loops()).violations]
        if what == "blackholes":
            return {str(node): _jsonable(spans) for node, spans
                    in session.find_blackholes().items()}
        if what == "reachable":
            return _jsonable(session.query(
                Reachable(request["src"], request["dst"])).spans)
        if what == "flows_on":
            return _jsonable(session.query(
                FlowsOn((request["source"], request["target"]))).spans)
        if what == "what_if_link_down":
            return _jsonable(session.query(
                LinkDown((request["source"], request["target"]))).spans)
        if what == "links":
            return [_jsonable(tuple(link)) for link in session.links()]
        if what == "rules":
            return sorted(session.rules())
        raise ValueError(f"unknown query {what!r}")


# -- transports ----------------------------------------------------------------


def _read_capped(readline: Callable[[int], Any], limit: int,
                 newline: Any) -> Tuple[Any, bool]:
    """Read one line of at most ``limit`` bytes/chars via ``readline``.

    Returns ``(line, oversized)``.  An oversized line is *drained* —
    read and discarded chunk by chunk up to its terminating newline —
    so the daemon never holds more than ``limit`` of it in memory and
    the stream stays framed for the next request.
    """
    line = readline(limit + 1)
    if len(line) <= limit or line.endswith(newline):
        return line, False
    while True:
        chunk = readline(limit)
        if not chunk or chunk.endswith(newline):
            return line, True


def serve_stdio(server: StreamServer, in_stream: IO[str],
                out_stream: IO[str]) -> int:
    """The ndjson request/response loop over text streams.

    Every response — including backpressure refusals (``busy``,
    ``overloaded``, ``frame too large``, ``draining``) — is written
    *and flushed* before the loop blocks reading the next request, so
    a client waiting on its reply never deadlocks against a daemon
    waiting on its next line.

    Args:
        server: the session daemon to dispatch into.
        in_stream: text stream of ndjson requests (e.g. ``sys.stdin``).
        out_stream: text stream responses are written to.

    Returns:
        The number of requests served.  A :class:`DrainRequested`
        raised by the SIGTERM handler (while the loop is blocked
        reading) exits the loop cleanly; the caller's
        ``server.close()`` then writes the final checkpoint exactly as
        a protocol ``shutdown`` would.
    """
    served = 0
    try:
        while True:
            line, oversized = _read_capped(
                in_stream.readline, server.max_line_bytes, "\n")
            if not line:
                break
            if oversized:
                response, keep_going = server.oversized_response(), True
            else:
                response, keep_going = server.handle_line(line)
            if response:
                out_stream.write(json.dumps(response) + "\n")
                out_stream.flush()
                served += 1
            if not keep_going:
                break
    except DrainRequested:
        pass
    return served


def serve_socket(server: StreamServer, host: str = "127.0.0.1",
                 port: int = 0,
                 ready: Optional[Callable[[str, int], None]] = None) -> None:
    """Serve ndjson over TCP; one thread per connection, shared session.

    Blocks until a client sends ``shutdown`` (or SIGTERM drains the
    daemon — see :func:`install_sigterm_drain`).  ``ready(host, port)``
    fires once the socket is listening (port 0 picks a free port).

    Responses — including error envelopes under backpressure — are
    flushed to the wire before the handler blocks on the next frame
    (the writer is unbuffered: each reply reaches ``sendall`` whole).
    A client that disconnects mid-request (reset, broken pipe) costs
    its own connection thread nothing but a log line — never a
    traceback, never the daemon.

    Args:
        server: the session daemon to dispatch into.
        host: interface to bind.
        port: TCP port (0 picks a free one).
        ready: callback fired with the bound ``(host, port)``.
    """
    stop = threading.Event()

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            try:
                while True:
                    raw, oversized = _read_capped(
                        self.rfile.readline, server.max_line_bytes, b"\n")
                    if not raw:
                        return
                    if oversized:
                        response, keep_going = (server.oversized_response(),
                                                True)
                    else:
                        response, keep_going = server.handle_line(
                            raw.decode("utf-8", "replace"))
                    if response:
                        self.wfile.write(
                            (json.dumps(response) + "\n").encode("utf-8"))
                        self.wfile.flush()
                    if not keep_going:
                        stop.set()
                        return
            except (ConnectionResetError, BrokenPipeError, OSError) as exc:
                # The client vanished mid-request; the update (if any)
                # is already applied and journaled — only the response
                # was lost, and only this connection is affected.
                server._log(f"client disconnected mid-request: "
                            f"{type(exc).__name__}: {exc}")

    class Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with Server((host, port), Handler) as tcp:
        if ready is not None:
            ready(*tcp.server_address[:2])
        worker = threading.Thread(target=tcp.serve_forever, daemon=True)
        worker.start()
        try:
            stop.wait()
        finally:
            # Runs on clean shutdown AND when DrainRequested unwinds
            # stop.wait(): either way the listener closes, in-flight
            # handlers finish, and the caller's close() checkpoints.
            tcp.shutdown()
            worker.join(timeout=5)


def install_sigterm_drain(server: StreamServer):
    """Route SIGTERM into a graceful drain; returns the prior handler.

    The handler marks the server draining; if the main thread is idle
    (blocked reading stdin or in ``stop.wait()``) it additionally
    raises :class:`DrainRequested` there to break the block.  If a
    dispatch is running, nothing is raised — interrupting it could
    leave the session half-updated — and the transport loop exits right
    after it completes.  Repeated SIGTERMs while already draining are
    no-ops: supervisors (systemd, timeout) commonly re-signal, and a
    second raise would land inside the final checkpoint and abort it.
    Returns ``None`` when signals cannot be installed (not the main
    thread, e.g. under a test runner).
    """
    import signal

    def handler(signum, frame):
        if server.draining:
            return
        server.request_drain()
        if not server._busy:
            raise DrainRequested()

    try:
        return signal.signal(signal.SIGTERM, handler)
    except ValueError:
        return None


def request_over_socket(host: str, port: int,
                        requests: Iterable[Dict[str, Any]],
                        timeout: float = 10.0) -> List[Dict[str, Any]]:
    """Small client helper: send requests in lockstep, collect responses.

    Args:
        host: daemon host.
        port: daemon port.
        requests: JSON-serializable request objects, sent one per line.
        timeout: socket timeout in seconds.

    Returns:
        One decoded response per request (shorter if the daemon closed
        the connection mid-conversation).
    """
    responses: List[Dict[str, Any]] = []
    with socket.create_connection((host, port), timeout=timeout) as conn:
        stream = conn.makefile("rw", encoding="utf-8", newline="\n")
        for request in requests:
            stream.write(json.dumps(request) + "\n")
            stream.flush()
            line = stream.readline()
            if not line:
                break
            responses.append(json.loads(line))
    return responses


# -- the SDN bridge ------------------------------------------------------------


def attach_controller(controller, server: StreamServer,
                      on_violation: Optional[Callable[[Dict[str, Any]], None]]
                      = None) -> None:
    """Verify an SDN controller's committed operations as they land.

    Works with any :mod:`repro.sdn` controller exposing
    ``subscribe(listener)`` and emitting
    :class:`~repro.datasets.format.Op` at commit time (both the direct
    ``Controller`` and the barrier-confirmed
    :class:`~repro.sdn.transport.OpenFlowController`).  Each committed
    op flows through the daemon's journaled, checkpointed update path;
    ``on_violation`` fires per delivered violation payload.
    """

    def _listener(op: Op) -> None:
        response = server.apply_op(op)
        if on_violation is not None:
            for payload in response["violations"]:
                on_violation(payload)

    controller.subscribe(_listener)


def wait_until_idle(server: StreamServer) -> int:
    """Testing aid: the current sequence once in-flight commands drain."""
    with server._lock:
        return server.session.sequence
