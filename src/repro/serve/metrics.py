"""In-process metrics for the serving layer: counters, histograms, gauges.

A :class:`MetricsRegistry` is the one object a daemon (or a
multi-session hub) holds; every :class:`StreamServer
<repro.serve.stream.StreamServer>` registers its instruments against
it under stable metric names with a ``session`` label, so a hub
hosting fifty tenants exports one coherent document.  The ``metrics``
protocol verb returns :meth:`MetricsRegistry.render_text` — a
Prometheus-style text exposition — without taking any session lock,
so scraping stays possible while an update runs.

The implementation is deliberately dependency-free: a registry-wide
:class:`threading.Lock` guards the sample dictionaries, increments are
O(1), and rendering walks a snapshot of the samples.  Gauges are
callback-based (:meth:`Gauge.watch`) so they always report the live
value and cost nothing between scrapes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]

#: Default latency buckets (seconds): 100us .. 2.5s, roughly log-spaced.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_labels(names: Sequence[str], values: LabelValues,
                   extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = [f'{name}="{_escape_label_value(str(value))}"'
             for name, value in zip(names, values)]
    pairs += [f'{name}="{_escape_label_value(str(value))}"'
              for name, value in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing counter, optionally labelled."""

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str], lock: threading.Lock) -> None:
        """Create a counter; use :meth:`MetricsRegistry.counter` instead."""
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._lock = lock
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` (default 1) to the sample named by ``labels``.

        Every label declared at registration must be provided; extra or
        missing labels raise :class:`ValueError`.
        """
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """Return the current value for ``labels`` (0 if never incremented)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def samples(self) -> List[Tuple[LabelValues, float]]:
        """Snapshot of ``(label_values, value)`` pairs, sorted by labels."""
        with self._lock:
            return sorted(self._values.items())

    def _key(self, labels: Dict[str, Any]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.label_names)

    def render(self) -> List[str]:
        """The exposition lines for this counter."""
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} counter"]
        for values, value in self.samples():
            lines.append(f"{self.name}"
                         f"{_format_labels(self.label_names, values)} "
                         f"{_format_number(value)}")
        return lines


class Histogram:
    """A cumulative-bucket histogram of observed values (seconds)."""

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str], lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        """Create a histogram; use :meth:`MetricsRegistry.histogram`."""
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self.buckets = tuple(sorted(buckets))
        self._lock = lock
        # per label set: ([bucket counts...], sum, count)
        self._series: Dict[LabelValues, List[Any]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation of ``value`` under ``labels``."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * len(self.buckets), 0.0, 0]
                self._series[key] = series
            counts, _, _ = series
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            series[1] += value
            series[2] += 1

    def snapshot(self, **labels: Any) -> Dict[str, Any]:
        """Return ``{"count", "sum", "buckets"}`` for one label set."""
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return {"count": 0, "sum": 0.0,
                        "buckets": [0] * len(self.buckets)}
            return {"count": series[2], "sum": series[1],
                    "buckets": list(series[0])}

    def render(self) -> List[str]:
        """The exposition lines for this histogram."""
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} histogram"]
        with self._lock:
            items = sorted((key, ([*s[0]], s[1], s[2]))
                           for key, s in self._series.items())
        for values, (counts, total, count) in items:
            for bound, bucket_count in zip(self.buckets, counts):
                label_text = _format_labels(
                    self.label_names, values,
                    extra=[("le", _format_number(bound))])
                lines.append(f"{self.name}_bucket{label_text} "
                             f"{bucket_count}")
            inf_labels = _format_labels(self.label_names, values,
                                        extra=[("le", "+Inf")])
            lines.append(f"{self.name}_bucket{inf_labels} {count}")
            plain = _format_labels(self.label_names, values)
            lines.append(f"{self.name}_sum{plain} {_format_number(total)}")
            lines.append(f"{self.name}_count{plain} {count}")
        return lines


class Gauge:
    """A callback-backed gauge: reports live values at render time."""

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str], lock: threading.Lock) -> None:
        """Create a gauge; use :meth:`MetricsRegistry.gauge` instead."""
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._lock = lock
        self._callbacks: Dict[LabelValues, Callable[[], float]] = {}

    def watch(self, label_values: Sequence[Any],
              callback: Callable[[], float]) -> None:
        """Register ``callback`` as the live value for ``label_values``."""
        key = tuple(str(value) for value in label_values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects {len(self.label_names)} label "
                f"values, got {len(key)}")
        with self._lock:
            self._callbacks[key] = callback

    def unwatch(self, label_values: Sequence[Any]) -> None:
        """Drop the callback for ``label_values`` (no-op if absent)."""
        key = tuple(str(value) for value in label_values)
        with self._lock:
            self._callbacks.pop(key, None)

    def render(self) -> List[str]:
        """The exposition lines; a failing callback skips its sample."""
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} gauge"]
        with self._lock:
            callbacks = sorted(self._callbacks.items())
        for values, callback in callbacks:
            try:
                value = float(callback())
            except Exception:
                continue  # a closed session must not break the scrape
            lines.append(f"{self.name}"
                         f"{_format_labels(self.label_names, values)} "
                         f"{_format_number(value)}")
        return lines


class MetricsRegistry:
    """Get-or-create registry of named instruments with text exposition.

    Re-registering a name returns the existing instrument (label names
    must match), so many sessions sharing one registry converge on the
    same metric families instead of colliding.
    """

    def __init__(self) -> None:
        """Create an empty registry."""
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def counter(self, name: str, help_text: str,
                label_names: Sequence[str] = ()) -> Counter:
        """Get or create the :class:`Counter` called ``name``.

        Raises :class:`ValueError` if ``name`` exists with a different
        instrument type or different label names.
        """
        return self._get_or_create(Counter, name, help_text, label_names)

    def histogram(self, name: str, help_text: str,
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create the :class:`Histogram` called ``name``."""
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                self._check_match(existing, Histogram, name, label_names)
                return existing
            instrument = Histogram(name, help_text, label_names,
                                   threading.Lock(), buckets)
            self._instruments[name] = instrument
            return instrument

    def gauge(self, name: str, help_text: str,
              label_names: Sequence[str] = ()) -> Gauge:
        """Get or create the :class:`Gauge` called ``name``."""
        return self._get_or_create(Gauge, name, help_text, label_names)

    def _get_or_create(self, cls, name: str, help_text: str,
                       label_names: Sequence[str]):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                self._check_match(existing, cls, name, label_names)
                return existing
            instrument = cls(name, help_text, label_names, threading.Lock())
            self._instruments[name] = instrument
            return instrument

    @staticmethod
    def _check_match(existing: Any, cls, name: str,
                     label_names: Sequence[str]) -> None:
        if not isinstance(existing, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(existing).__name__}")
        if existing.label_names != tuple(label_names):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{existing.label_names}, not {tuple(label_names)}")

    def get(self, name: str) -> Optional[Any]:
        """Return the instrument called ``name`` or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    def render_text(self) -> str:
        """The whole registry as Prometheus-style text exposition."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        lines: List[str] = []
        for _, instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + ("\n" if lines else "")
