"""Libra-style header-space sharding on top of Delta-net (§5).

"Libra's partitioning scheme into disjoint subnets is orthogonal to our
algorithm ... it would be interesting to leverage both ideas together in
future work."  This package does exactly that: it partitions the
destination space into disjoint shards (Libra's "subnets"), routes every
rule to the shards its prefix intersects, and runs one independent
:class:`~repro.core.deltanet.DeltaNet` per shard.  Shards never share
state, so they are embarrassingly parallel — the map step of Libra's
MapReduce formulation — while each shard keeps Delta-net's incremental
guarantees.
"""

from repro.libra.parallel import ParallelShardedDeltaNet
from repro.libra.sharding import ShardedDeltaNet, even_shards

__all__ = ["ParallelShardedDeltaNet", "ShardedDeltaNet", "even_shards"]
