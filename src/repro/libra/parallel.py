"""Process-parallel sharding: Libra's map/reduce with real workers.

:class:`ParallelShardedDeltaNet` runs one OS process per header-space
shard.  Each worker owns an independent :class:`~repro.core.deltanet.
DeltaNet` (plus its incremental loop checker) for its slice and serves
commands over a dedicated duplex pipe.  The parent performs the *map*
step — clipping rules to shards, exactly as
:class:`~repro.libra.sharding.ShardedDeltaNet` does — then fans a batch
(or a query) out to every touched worker and merges the replies: the
*reduce* step.  Because workers are separate processes, the per-shard
update sweeps and loop checks run truly concurrently, GIL-free.

Loop checking runs *inside* the workers (the checker chases the shard's
own persistent forwarding index, which lives and dies with the worker);
workers therefore return canonical loop cycles, not delta-graphs,
keeping the pipe traffic small.

Shard workers are *supervised*.  The parent detects dead and hung
workers (pipe EOF, broken pipe, or a per-request ``deadline``) and
recovers them transparently: the worker is restarted with exponential
backoff, re-seeded from the last per-shard snapshot plus a bounded
in-memory replay buffer of post-snapshot sub-batches, and the in-flight
command is re-issued.  Re-seeding reconstructs the shard's
*pre-command* state, so a command lost with the worker's memory applies
exactly once.  After ``max_restarts`` consecutive failures the shard
degrades to a re-seeded in-process endpoint — an observable state
(:attr:`~ParallelShardedDeltaNet.degraded`, :attr:`events`, the ``log``
callback), never a silent one.  Only application-level errors the
worker *reports* (a desynchronized sub-batch) still poison the update
surface, as before: those mean divergent state, not a dead process.

When worker processes cannot be spawned at all (restricted sandboxes,
platforms without a working ``multiprocessing``), the class falls back
to in-process shard servers with identical semantics — and records that
too: ``.parallel`` reports which mode is live and ``.degraded`` is True
for an unrequested fallback.  Always :meth:`close` (or use as a context
manager) to reap the workers.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.checkers.blackholes import find_blackholes as _shard_blackholes
from repro.checkers.loops import LoopChecker, find_forwarding_loops
from repro.checkers.reachability import reachable_atoms
from repro.core.atomset import atoms_to_interval_set
from repro.core.deltanet import DeltaNet
from repro.core.intervals import IntervalSet, normalize
from repro.core.rules import Link, Rule
from repro.faults.injector import DropMessage, fire
from repro.libra.sharding import ShardRouter

#: A forwarding cycle as a canonical tuple of nodes (see Loop.canonical).
Cycle = Tuple[object, ...]


class WorkerCrash(RuntimeError):
    """A shard worker process died or blew its per-request deadline.

    Distinct from application errors a live worker *reports* over the
    pipe: a crash says nothing about shard-state validity, so the
    supervisor recovers it; a reported error means divergent state and
    keeps its poisoning semantics.
    """

    def __init__(self, message: str, hung: bool = False) -> None:
        super().__init__(message)
        #: True when the worker missed its deadline (vs. a dead pipe).
        self.hung = hung


class _ShardServer:
    """One shard's state and command dispatch.

    Runs inside a worker process normally; the inline fallback calls
    :meth:`handle` directly in the parent, so both execution modes share
    one implementation.
    """

    def __init__(self, width: int, gc: bool) -> None:
        self.net = DeltaNet(width=width, gc=gc)
        self.checker = LoopChecker(self.net)
        #: Live speculative forks of this shard, by speculation id.
        #: They live in this process's memory only: a restart loses
        #: them, which the unknown-id path reports as staleness.
        self._specs: Dict[int, DeltaNet] = {}

    def handle(self, method: str, args: tuple):
        return getattr(self, "do_" + method)(*args)

    # -- updates ---------------------------------------------------------------

    def do_apply_batch(self, inserts: List[Rule], removals: List[int],
                       check: bool) -> List[Cycle]:
        delta = self.net.apply_batch(inserts, removals)
        if not check or delta.is_empty():
            # An empty delta changed no label in this shard — nothing
            # to chase, and nothing to ship back over the pipe.
            return []
        return [loop.cycle for loop in self.checker.check_update(delta)]

    # -- queries (each worker answers for its slice only) ------------------------

    def do_flows_on(self, link: Link) -> List[Tuple[int, int]]:
        return self.net.flows_on(link)

    def do_links(self) -> List[Link]:
        return list(self.net.links())

    def do_dump_flows(self) -> Dict[Link, List[Tuple[int, int]]]:
        return {link: self.net.flows_on(link) for link in self.net.links()}

    def do_find_loops(self) -> List[Cycle]:
        return [loop.cycle for loop in find_forwarding_loops(self.net)]

    def do_reachable(self, src: object, dst: object) -> List[Tuple[int, int]]:
        atoms = reachable_atoms(self.net, src, dst)
        return atoms_to_interval_set(atoms, self.net.atoms)

    def do_find_blackholes(self) -> Dict[object, List[Tuple[int, int]]]:
        return {node: atoms_to_interval_set(atoms, self.net.atoms)
                for node, atoms in _shard_blackholes(self.net).items()}

    def do_owner_target(self, source: object, point: int) -> Optional[Link]:
        rule = self.net.owner_rule(self.net.atoms.atom_at(point), source)
        return rule.link if rule else None

    def do_stats(self) -> Tuple[int, int]:
        return self.net.num_rules, self.net.num_atoms

    def do_check_invariants(self) -> None:
        self.net.check_invariants()

    # -- integrity (per-shard audit; see repro.integrity) ------------------------

    def do_digest(self, recompute: bool = False):
        """The shard's reported (live, incrementally maintained) digest
        and, when ``recompute``, an independent from-scratch one."""
        live = self.net.state_digest()
        recomputed = self.net.recompute_state_digest() if recompute else None
        return live, recomputed

    def do_desync(self) -> bool:
        """Corrupt one label entry *bypassing* digest maintenance — the
        chaos/test stand-in for a buggy delta path or in-memory bit rot.
        Toggles atom 0's membership directly on an ``AtomRuns`` bucket,
        so the shard answers queries silently wrong until audited.
        Returns whether any entry could be corrupted (empty shards
        cannot desynchronize)."""
        for runs in self.net.findex.by_link.values():
            if 0 not in runs:
                runs.add(0)
                return True
        for runs in self.net.findex.by_link.values():
            if len(runs) > 1 and 0 in runs:
                runs.discard(0)
                return True
        return False

    # -- speculation (per-shard CoW forks; see repro.core.speculative) -----------

    def _spec(self, spec_id: int) -> DeltaNet:
        net = self._specs.get(spec_id)
        if net is None:
            from repro.core.speculative import StaleSpeculationError

            raise StaleSpeculationError(
                f"speculation {spec_id} is not held by this worker "
                "(restarted since the fork?); discard and re-speculate")
        net.assert_fresh()
        return net

    def do_spec_begin(self, spec_id: int) -> None:
        from repro.core.speculative import SpeculativeDeltaNet

        self._specs[spec_id] = SpeculativeDeltaNet.from_parent(self.net)

    def do_spec_apply_batch(self, spec_id: int, inserts: List[Rule],
                            removals: List[int], check: bool) -> List[Cycle]:
        net = self._spec(spec_id)
        delta = net.apply_batch(inserts, removals)
        if not check or delta.is_empty():
            return []
        return [loop.cycle for loop in LoopChecker(net).check_update(delta)]

    def do_spec_query(self, spec_id: int, method: str, args: tuple):
        net = self._spec(spec_id)
        if method == "flows_on":
            return net.flows_on(*args)
        if method == "links":
            return list(net.links())
        if method == "find_loops":
            return [loop.cycle for loop in find_forwarding_loops(net)]
        if method == "reachable":
            atoms = reachable_atoms(net, *args)
            return atoms_to_interval_set(atoms, net.atoms)
        if method == "find_blackholes":
            return {node: atoms_to_interval_set(atoms, net.atoms)
                    for node, atoms in _shard_blackholes(net).items()}
        if method == "stats":
            return net.num_rules, net.num_atoms
        if method == "check_invariants":
            return net.check_invariants()
        raise ValueError(f"unknown speculative query {method!r}")

    def do_spec_discard(self, spec_id: int) -> None:
        self._specs.pop(spec_id, None)

    # -- persistence (per-shard snapshot fan-out) --------------------------------

    def do_snapshot(self) -> dict:
        return self.net.state_dict()

    def do_restore(self, state: dict) -> None:
        self.net = DeltaNet.from_state(state)
        self.checker = LoopChecker(self.net)


def _shard_worker(conn, width: int, gc: bool) -> None:
    """Worker process main loop: serve commands until EOF/None."""
    server = _ShardServer(width, gc)
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message is None:
                break
            method, args = message
            try:
                conn.send((True, server.handle(method, args)))
            except Exception as exc:  # forwarded to the caller; stay alive
                conn.send((False, exc))
    finally:
        conn.close()


class _ProcessEndpoint:
    """Parent-side handle of one worker: submit now, collect later."""

    def __init__(self, ctx, width: int, gc: bool, index: int = 0) -> None:
        self.index = index
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_shard_worker, args=(child_conn, width, gc), daemon=True)
        self.process.start()
        child_conn.close()

    def submit(self, method: str, args: tuple) -> None:
        try:
            fire("parallel.pipe.send", shard=self.index, method=method,
                 endpoint=self)
        except DropMessage:
            # Blackholed: the caller sees a successful send and the
            # reply never comes; the deadline turns this into a hung
            # worker for the supervisor to reap.
            return
        try:
            self.conn.send((method, args))
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise WorkerCrash(
                f"shard {self.index} worker is gone at send: {exc}") from exc
        fire("parallel.pipe.sent", shard=self.index, method=method,
             endpoint=self)

    def result(self, deadline: Optional[float] = None):
        try:
            if deadline is not None and not self.conn.poll(deadline):
                raise WorkerCrash(
                    f"shard {self.index} worker missed its {deadline}s "
                    f"deadline", hung=True)
            ok, value = self.conn.recv()
        except WorkerCrash:
            raise
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise WorkerCrash(
                f"shard {self.index} worker is gone at recv: {exc}") from exc
        if not ok:
            raise value
        return value

    def kill(self) -> None:
        """Hard-stop a crashed/hung worker: no protocol goodbye."""
        try:
            self.conn.close()
        except OSError:
            pass
        try:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5)
        except Exception:
            pass

    def close(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError, ValueError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5)


class _InlineEndpoint:
    """Same submit/result surface, served in-process (fallback mode)."""

    def __init__(self, width: int, gc: bool, index: int = 0,
                 server: Optional[_ShardServer] = None) -> None:
        self.index = index
        self.server = server if server is not None else _ShardServer(width, gc)
        self._pending: Optional[tuple] = None

    def submit(self, method: str, args: tuple) -> None:
        try:
            self._pending = (True, self.server.handle(method, args))
        except Exception as exc:
            self._pending = (False, exc)

    def result(self, deadline: Optional[float] = None):
        ok, value = self._pending
        self._pending = None
        if not ok:
            raise value
        return value

    def close(self) -> None:
        pass


class ParallelShardedDeltaNet(ShardRouter):
    """Disjoint-slice Delta-nets served by one worker process per shard.

    The update surface mirrors :class:`~repro.libra.sharding.
    ShardedDeltaNet` (whose :class:`~repro.libra.sharding.ShardRouter`
    map step it shares), except updates return the *loops* the
    per-shard incremental checkers found (pass ``check=False`` to skip
    checking) rather than delta-graphs — deltas live and die inside the
    workers.

    ``start_method`` picks the :mod:`multiprocessing` context (``fork``
    where available is fastest); ``force_inline=True`` skips processes
    entirely and serves every shard in-process.

    Supervision knobs (see the module docstring for the protocol):

    ``deadline``
        seconds a worker may take to answer one command before it is
        declared hung and restarted (``None`` disables — a hung worker
        then blocks forever, as before supervision existed).
    ``max_restarts``
        consecutive recovery failures per shard before it degrades to
        an in-process endpoint.
    ``restart_backoff``
        base seconds of the exponential restart backoff (doubles per
        consecutive failure — the restart-storm brake).
    ``reseed_every``
        bound, in rule operations, on the per-shard replay buffer; when
        exceeded the shard is re-snapshotted and the buffer cleared, so
        recovery cost stays bounded.
    ``log``
        optional callable receiving one line per supervision event
        (restarts, degradations, the inline fallback); events are
        always recorded on :attr:`events` regardless.
    """

    def __init__(self, shards: Optional[Iterable[Tuple[int, int]]] = None,
                 width: int = 32, gc: bool = False,
                 start_method: Optional[str] = None,
                 force_inline: bool = False,
                 deadline: Optional[float] = 60.0,
                 max_restarts: int = 3,
                 restart_backoff: float = 0.05,
                 reseed_every: int = 256,
                 log: Optional[Callable[[str], None]] = None) -> None:
        super().__init__(shards, width)
        self._closed = False
        self._poisoned = False
        self.parallel = False
        self.deadline = deadline
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.reseed_every = reseed_every
        self._log = log
        self._gc = gc
        self._ctx = None
        #: Supervision event records ({"kind": ..., "shard": ...}, ...).
        self.events: List[dict] = []
        #: Completed worker restarts across the instance's lifetime.
        self.restarts = 0
        #: Committed-mutation counter — the staleness epoch speculative
        #: forks (:meth:`speculate`) record and re-check.
        self.mutations = 0
        self._spec_counter = 0
        #: Integrity-audit counters (see :meth:`audit_shard`).
        self.audits = 0
        self.audit_mismatches = 0
        self.audit_repairs = 0
        self.audit_escalations = 0
        workers: List[object] = []
        if not force_inline:
            try:
                ctx = (multiprocessing.get_context(start_method)
                       if start_method else multiprocessing.get_context())
                for index in range(len(self.slices)):
                    # Append as we go: a partial spawn failure (fd or
                    # process limits) must reap the workers already
                    # started, not leak them.
                    workers.append(_ProcessEndpoint(ctx, width, gc, index))
                self.parallel = True
                self._ctx = ctx
            except Exception as exc:
                for endpoint in workers:
                    endpoint.close()
                workers = []
                self._note("inline-fallback",
                           cause=f"{type(exc).__name__}: {exc}")
        self._fallback = bool(not force_inline and not workers)
        if not workers:
            workers = [_InlineEndpoint(width, gc, index)
                       for index in range(len(self.slices))]
        self._workers = workers
        count = len(workers)
        # Per-shard recovery state: the last snapshot (None = the empty
        # shard), the post-snapshot sub-batches, the op count bounding
        # that buffer, and the consecutive-crash streak.
        self._seeds: List[Optional[dict]] = [None] * count
        self._replay: List[List[Tuple[List[Rule], List[int]]]] = \
            [[] for _ in range(count)]
        self._replay_ops: List[int] = [0] * count
        self._streaks: List[int] = [0] * count
        self._degraded_shards: Set[int] = set()

    # -- supervision -------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when any shard runs in-process although worker
        processes were requested (constructor fallback or a shard that
        exhausted its restart budget)."""
        return self._fallback or bool(self._degraded_shards)

    @property
    def degraded_shards(self) -> Tuple[int, ...]:
        return tuple(sorted(self._degraded_shards))

    def _note(self, kind: str, **fields) -> None:
        event = {"kind": kind}
        event.update(fields)
        self.events.append(event)
        if self._log is not None:
            try:
                detail = ", ".join(f"{key}={value}" for key, value
                                   in fields.items())
                self._log(f"parallel: {kind} ({detail})")
            except Exception:
                pass

    def _rebuild_server(self, index: int) -> _ShardServer:
        """The shard's current state, reconstructed in-process."""
        server = _ShardServer(self.width, self._gc)
        if self._seeds[index] is not None:
            server.do_restore(self._seeds[index])
        for shard_inserts, shard_removals in self._replay[index]:
            server.do_apply_batch(shard_inserts, shard_removals, False)
        return server

    def _degrade(self, index: int, cause: str) -> None:
        self._workers[index] = _InlineEndpoint(
            self.width, self._gc, index, server=self._rebuild_server(index))
        self._degraded_shards.add(index)
        self._note("degraded", shard=index, cause=cause,
                   failures=self._streaks[index])

    def _recover(self, index: int, crash: BaseException) -> None:
        """Replace shard ``index``'s dead/hung worker.

        Restarts with exponential backoff and re-seeds from the last
        per-shard snapshot plus the replay buffer — reconstructing the
        shard's state *before* the in-flight command, so the caller can
        re-issue it exactly once.  After ``max_restarts`` consecutive
        failures the shard degrades to an in-process endpoint.
        """
        old = self._workers[index]
        if isinstance(old, _ProcessEndpoint):
            old.kill()
        cause = f"{type(crash).__name__}: {crash}"
        while True:
            self._streaks[index] += 1
            if self._streaks[index] > self.max_restarts or self._ctx is None:
                self._degrade(index, cause)
                return
            backoff = self.restart_backoff * (2 ** (self._streaks[index] - 1))
            if backoff > 0:
                time.sleep(backoff)
            endpoint = None
            try:
                endpoint = _ProcessEndpoint(self._ctx, self.width, self._gc,
                                            index)
                if self._seeds[index] is not None:
                    endpoint.submit("restore", (self._seeds[index],))
                    endpoint.result(self.deadline)
                for shard_inserts, shard_removals in self._replay[index]:
                    endpoint.submit(
                        "apply_batch", (shard_inserts, shard_removals, False))
                    endpoint.result(self.deadline)
            except Exception as exc:
                if endpoint is not None:
                    endpoint.kill()
                cause = f"{type(exc).__name__}: {exc}"
                continue
            self._workers[index] = endpoint
            self.restarts += 1
            self._note("restart", shard=index, cause=cause,
                       attempt=self._streaks[index],
                       replayed=len(self._replay[index]))
            return

    def _call(self, index: int, method: str, args: tuple):
        """One supervised round-trip to shard ``index``.

        Worker crashes are recovered (restart, re-seed, re-issue)
        transparently; errors the shard *reports* propagate unchanged.
        """
        while True:
            endpoint = self._workers[index]
            try:
                endpoint.submit(method, args)
                value = endpoint.result(self.deadline)
            except WorkerCrash as crash:
                self._recover(index, crash)
                continue
            self._streaks[index] = 0
            return value

    def _record_applied(self, index: int,
                        payload: Tuple[List[Rule], List[int]]) -> None:
        """Track a successfully applied sub-batch for recovery replay.

        When the buffer outgrows ``reseed_every`` ops the shard is
        re-snapshotted over its pipe and the buffer cleared — recovery
        work stays bounded no matter how long the instance runs.

        Tracked for inline endpoints too: crash recovery never needs it
        there, but quarantine *repair* (:meth:`audit_shard`) rebuilds a
        desynchronized shard from the same seed + replay buffer in
        either mode.
        """
        shard_inserts, shard_removals = payload
        self._replay[index].append((list(shard_inserts),
                                    list(shard_removals)))
        self._replay_ops[index] += len(shard_inserts) + len(shard_removals)
        if self._replay_ops[index] > self.reseed_every:
            self._seeds[index] = self._call(index, "snapshot", ())
            self._replay[index] = []
            self._replay_ops[index] = 0

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut the workers down; idempotent, and safe to call after a
        worker already died mid-request (the dead endpoint is reaped,
        not re-awaited)."""
        if self._closed:
            return
        self._closed = True
        for endpoint in self._workers:
            try:
                endpoint.close()
            except Exception:
                # A worker that died mid-request may leave a broken
                # pipe; closing must still reap the rest.
                pass
        self._seeds = [None] * len(self._workers)
        self._replay = [[] for _ in self._workers]

    def __enter__(self) -> "ParallelShardedDeltaNet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- fan-out plumbing ----------------------------------------------------------

    def _fan_out(self, method: str, args: tuple = (),
                 indices: Optional[Iterable[int]] = None) -> List[object]:
        """Send a command to the selected workers, then collect replies.

        All submits go out before the first result is awaited — with
        process workers the shards genuinely execute concurrently.
        Every reply is drained even when one worker errors (an undrained
        pipe would pair the *next* command with this command's stale
        reply); a crashed worker is recovered and the command re-issued
        through the fresh endpoint, while the first *reported* error is
        re-raised after the sweep.
        """
        chosen = (list(indices) if indices is not None
                  else list(range(len(self._workers))))
        submitted: List[int] = []
        deferred: List[int] = []
        first_error: Optional[Exception] = None
        for index in chosen:
            try:
                self._workers[index].submit(method, args)
                submitted.append(index)
            except WorkerCrash as crash:
                self._recover(index, crash)
                deferred.append(index)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        results: Dict[int, object] = {}
        for index in submitted:
            try:
                results[index] = self._workers[index].result(self.deadline)
                self._streaks[index] = 0
            except WorkerCrash as crash:
                self._recover(index, crash)
                deferred.append(index)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        for index in deferred:
            try:
                results[index] = self._call(index, method, args)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return [results[index] for index in chosen]

    # -- updates (map: clip; reduce: merge worker loop reports) --------------------

    def apply_batch(self, rules_to_insert: Iterable[Rule] = (),
                    rids_to_remove: Iterable[int] = (),
                    check: bool = True) -> List[Cycle]:
        """Apply a batch across shards concurrently; merge found loops.

        Same order semantics as :meth:`DeltaNet.apply_batch` (removals
        first).  The whole batch is validated (by the shared
        :meth:`~repro.libra.sharding.ShardRouter.route_batch`) before
        anything is sent, so a rejected batch leaves every shard
        untouched.

        A worker that crashes mid-batch is recovered and its sub-batch
        re-issued against the reconstructed pre-batch shard state —
        exactly-once, whether the crash hit before or after the worker
        applied it.  Only an error a live worker reports (divergent
        shard state) poisons further updates, as without two-phase
        commit the instance cannot be reconciled; queries on the
        partial state stay available.
        """
        if self._poisoned:
            raise RuntimeError(
                "parallel verifier is inconsistent after a failed batch; "
                "rebuild it (queries on the partial state still work)")
        inserts = list(rules_to_insert)
        removals = list(rids_to_remove)
        per_shard = self.route_batch(inserts, removals)
        touched = [index for index, (ins, rem) in enumerate(per_shard)
                   if ins or rem]
        # Per-shard payloads differ, so submit individually (all sends
        # before the first await — the workers run concurrently), then
        # drain every successfully submitted reply, recovering crashed
        # workers, before raising any reported error.
        submitted: List[int] = []
        deferred: List[int] = []
        first_error: Optional[Exception] = None
        for index in touched:
            shard_inserts, shard_removals = per_shard[index]
            try:
                self._workers[index].submit(
                    "apply_batch", (shard_inserts, shard_removals, check))
                submitted.append(index)
            except WorkerCrash as crash:
                self._recover(index, crash)
                deferred.append(index)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        loops: Dict[Cycle, None] = {}
        applied: List[int] = []
        for index in submitted:
            shard_inserts, shard_removals = per_shard[index]
            try:
                cycles = self._workers[index].result(self.deadline)
                self._streaks[index] = 0
            except WorkerCrash as crash:
                # The crash took the sub-batch with the worker's memory
                # (recovery re-seeds the pre-batch state), so re-issue.
                self._recover(index, crash)
                deferred.append(index)
                continue
            except Exception as exc:
                if first_error is None:
                    first_error = exc
                continue
            applied.append(index)
            for cycle in cycles:
                loops.setdefault(cycle)
        for index in deferred:
            shard_inserts, shard_removals = per_shard[index]
            try:
                cycles = self._call(
                    index, "apply_batch",
                    (shard_inserts, shard_removals, check))
            except Exception as exc:
                if first_error is None:
                    first_error = exc
                continue
            applied.append(index)
            for cycle in cycles:
                loops.setdefault(cycle)
        if applied:
            # Even a partially applied batch advances the epoch: any
            # open speculation's shared state has drifted.
            self.mutations += 1
        if first_error is not None:
            # Some shards may have applied their sub-batch while others
            # did not — without two-phase commit the instance cannot be
            # reconciled, so refuse all further *updates* rather than
            # risk phantom rules on a retry.  Queries stay available for
            # inspecting the partial state.
            self._poisoned = True
            raise first_error
        for index in applied:
            self._record_applied(index, per_shard[index])
        return list(loops)

    def insert_rule(self, rule: Rule, check: bool = True) -> List[Cycle]:
        return self.apply_batch([rule], (), check=check)

    def remove_rule(self, rid: int, check: bool = True) -> List[Cycle]:
        return self.apply_batch((), [rid], check=check)

    # -- queries (reduce over all shards) ------------------------------------------

    def flows_on(self, link) -> List[Tuple[int, int]]:
        spans: List[Tuple[int, int]] = []
        for shard_spans in self._fan_out("flows_on", (link,)):
            spans.extend(shard_spans)
        return normalize(spans)

    def links(self) -> List[Link]:
        seen: Dict[Link, None] = {}
        for shard_links in self._fan_out("links"):
            for link in shard_links:
                seen.setdefault(link)
        return list(seen)

    def dump_flows(self) -> Dict[Link, List[Tuple[int, int]]]:
        """Every link's flows, merged across shards (tests/diagnostics)."""
        merged: Dict[Link, List[Tuple[int, int]]] = {}
        for shard_dump in self._fan_out("dump_flows"):
            for link, spans in shard_dump.items():
                merged.setdefault(link, []).extend(spans)
        return {link: normalize(spans) for link, spans in merged.items()}

    def find_loops(self) -> List[Cycle]:
        seen: Dict[Cycle, None] = {}
        for shard_loops in self._fan_out("find_loops"):
            for cycle in shard_loops:
                seen.setdefault(cycle)
        return list(seen)

    def reachable(self, src: object, dst: object) -> List[Tuple[int, int]]:
        spans: List[Tuple[int, int]] = []
        for shard_spans in self._fan_out("reachable", (src, dst)):
            spans.extend(shard_spans)
        return normalize(spans)

    def find_blackholes(self) -> Dict[object, List[Tuple[int, int]]]:
        merged: Dict[object, IntervalSet] = {}
        for shard_holes in self._fan_out("find_blackholes"):
            for node, spans in shard_holes.items():
                merged[node] = merged.get(node, IntervalSet()) | IntervalSet(spans)
        return {node: spans.spans for node, spans in merged.items()}

    def owner_link_at(self, source: object, point: int) -> Optional[Link]:
        """The link a ``point``-packet takes at ``source``, if any."""
        index = self.shard_of_point(point)
        return self._fan_out("owner_target", (source, point), [index])[0]

    def shard_sizes(self) -> List[Tuple[int, int]]:
        """(rules, atoms) per shard — the load-balance view."""
        return list(self._fan_out("stats"))

    @property
    def total_atoms(self) -> int:
        return sum(atoms for _rules, atoms in self.shard_sizes())

    # -- integrity audit (see repro.integrity) -----------------------------------

    def state_digest(self):
        """The fleet-wide digest: componentwise combination of every
        worker's reported live digest (``None`` if digests are off)."""
        from repro.integrity.digest import combine_digests

        return combine_digests(
            live for live, _recomputed in self._fan_out("digest", (False,)))

    def audit_shard(self, index: int, repair: bool = True) -> dict:
        """Audit one worker's reported digest against an independent
        from-scratch recomputation of its shard state.

        The worker's *live* digest is maintained incrementally by the
        same delta paths that mutate the state — the value it would
        report into snapshots and health checks.  The recomputation
        hashes the actual structures entry by entry, so any divergence
        (bit rot, a buggy delta path, a desynchronized replica) between
        what the shard claims and what it holds surfaces here.

        On mismatch the shard is **quarantined** and, when ``repair``,
        rebuilt through the existing re-seed machinery (last per-shard
        snapshot + replay buffer — state reconstructed through
        digest-maintaining code), then re-audited.  A repair whose
        digests still disagree **escalates**: the shard degrades to the
        inline fallback and stays flagged.  Every transition lands in
        :attr:`events`.
        """
        from repro.integrity.digest import parse_digest

        self.audits += 1
        live, recomputed = self._call(index, "digest", (True,))
        entries = sum(part[0] for part in parse_digest(recomputed)[1])
        result = {"shard": index, "clean": live == recomputed,
                  "entries": entries, "repaired": False, "escalated": False}
        if live is None:
            result["clean"] = True
            result["skipped"] = "digests-disabled"
            return result
        if result["clean"]:
            return result
        self.audit_mismatches += 1
        self._note("quarantine", shard=index, live=live,
                   recomputed=recomputed)
        if not repair:
            return result
        endpoint = self._workers[index]
        if isinstance(endpoint, _ProcessEndpoint):
            self._recover(index, WorkerCrash("state digest mismatch"))
        else:
            self._workers[index] = _InlineEndpoint(
                self.width, self._gc, index,
                server=self._rebuild_server(index))
        live, recomputed = self._call(index, "digest", (True,))
        if live == recomputed:
            self.audit_repairs += 1
            result["repaired"] = True
            self._note("repair", shard=index, digest=live)
        else:
            self.audit_escalations += 1
            result["escalated"] = True
            self._degrade(index, "digest mismatch persists after re-seed")
        return result

    def audit(self, repair: bool = True) -> List[dict]:
        """One full audit cycle: every shard, in order."""
        return [self.audit_shard(index, repair=repair)
                for index in range(self.num_shards)]

    def desync_shard(self, index: int) -> bool:
        """Inject silent corruption into shard ``index`` (chaos/tests):
        flips a label entry behind the digest's back, exactly what
        :meth:`audit_shard` exists to catch."""
        return bool(self._call(index, "desync", ()))

    # -- persistence (see repro.persist) ----------------------------------------

    def state_dict(self) -> dict:
        """Router bookkeeping plus every worker's Delta-net state.

        The per-shard snapshots are gathered over the worker pipes
        concurrently — each worker serializes its own slice while the
        others do the same.
        """
        state = self.router_state()
        state["nets"] = list(self._fan_out("snapshot"))
        return state

    def _seed_shards(self, states: List[dict]) -> None:
        """Restore every shard from ``states`` (concurrent fan-out).

        The states double as recovery seeds *before* the restores are
        issued: a worker that crashes mid-restore is recovered by
        :meth:`_recover`, whose seed replay performs the very restore
        that was in flight — so a crash here self-heals.
        """
        for index, net_state in enumerate(states):
            self._seeds[index] = net_state
            self._replay[index] = []
            self._replay_ops[index] = 0
        submitted: List[int] = []
        deferred: List[int] = []
        for index, net_state in enumerate(states):
            try:
                self._workers[index].submit("restore", (net_state,))
                submitted.append(index)
            except WorkerCrash as crash:
                self._recover(index, crash)
                deferred.append(index)
        for index in submitted:
            try:
                self._workers[index].result(self.deadline)
                self._streaks[index] = 0
            except WorkerCrash as crash:
                # Recovery replays the seed — the restore still lands.
                self._recover(index, crash)

    @classmethod
    def from_state(cls, state: dict, gc: bool = False,
                   start_method: Optional[str] = None,
                   force_inline: bool = False,
                   **supervision) -> "ParallelShardedDeltaNet":
        """Rebuild shards in their workers (restore fan-out).

        Worker-pool shape (``start_method``/``force_inline``) and the
        supervision knobs are host properties, not session state —
        callers choose them per restore.
        """
        slices = [tuple(pair) for pair in state["slices"]]
        instance = cls(slices, width=state["width"], gc=gc,
                       start_method=start_method, force_inline=force_inline,
                       **supervision)
        instance._restore_router(state)
        instance._seed_shards(list(state["nets"]))
        return instance

    def check_invariants(self) -> None:
        self._fan_out("check_invariants")

    # -- speculation (see repro.core.speculative) --------------------------------

    def speculate(self) -> "ParallelSpeculation":
        """Fork a fleet-wide copy-on-write what-if child.

        Every worker forks a :class:`~repro.core.speculative.
        SpeculativeDeltaNet` of its shard in place — no state crosses
        the pipes — and the returned handle routes updates and queries
        to those forks under a speculation id.  Always ``discard()``
        (or ``close()``) the handle; the forks hold worker memory.
        """
        spec_id = self._spec_counter
        self._spec_counter += 1
        self._fan_out("spec_begin", (spec_id,))
        return ParallelSpeculation(self, spec_id)

    def __repr__(self) -> str:
        mode = "processes" if self.parallel else "inline"
        if self.degraded:
            mode += " (degraded)"
        return (f"ParallelShardedDeltaNet(shards={self.num_shards}, "
                f"rules={self.num_rules}, mode={mode})")


class ParallelSpeculation(ShardRouter):
    """Parent-side handle of one fleet-wide speculative fork.

    Mirrors the :class:`ParallelShardedDeltaNet` update/query surface
    against the per-worker :class:`~repro.core.speculative.
    SpeculativeDeltaNet` forks.  Router bookkeeping is forked shallowly
    (placement lists are popped/created whole, never mutated in place);
    staleness is enforced on both sides — the handle re-checks the
    parent's committed-mutation epoch before every touch, and a worker
    that restarted (its fork died with its memory) reports
    :class:`~repro.core.speculative.StaleSpeculationError` itself.
    Unknown attributes delegate to the parent, so pool-shape
    diagnostics (``parallel``, ``degraded``, ...) keep answering.
    """

    def __init__(self, parent: "ParallelShardedDeltaNet",
                 spec_id: int) -> None:
        self._parent = parent
        self.spec_id = spec_id
        self.width = parent.width
        self.slices = list(parent.slices)
        self._starts = list(parent._starts)
        self._placement = dict(parent._placement)
        self._next_clipped = parent._next_clipped
        self._base_mutations = parent.mutations
        self._discarded = False

    def assert_fresh(self) -> None:
        """Raise unless this fork still reflects the parent's state."""
        from repro.core.speculative import StaleSpeculationError

        if self._discarded:
            raise StaleSpeculationError(
                f"speculation {self.spec_id} was already discarded")
        if self._parent.mutations != self._base_mutations:
            raise StaleSpeculationError(
                "parent advanced since this speculation was forked "
                f"({self._parent.mutations - self._base_mutations} "
                "batch(es) behind); discard and re-speculate")

    def _spec_fan_out(self, method: str, args: tuple = ()) -> List[object]:
        self.assert_fresh()
        return self._parent._fan_out(
            "spec_query", (self.spec_id, method, args))

    # -- updates -----------------------------------------------------------------

    def apply_batch(self, rules_to_insert: Iterable[Rule] = (),
                    rids_to_remove: Iterable[int] = (),
                    check: bool = True) -> List[Cycle]:
        self.assert_fresh()
        per_shard = self.route_batch(list(rules_to_insert),
                                     list(rids_to_remove))
        loops: Dict[Cycle, None] = {}
        for index, (shard_inserts, shard_removals) in enumerate(per_shard):
            if not shard_inserts and not shard_removals:
                continue
            cycles = self._parent._call(
                index, "spec_apply_batch",
                (self.spec_id, shard_inserts, shard_removals, check))
            for cycle in cycles:
                loops.setdefault(cycle)
        return list(loops)

    def insert_rule(self, rule: Rule, check: bool = True) -> List[Cycle]:
        return self.apply_batch([rule], (), check=check)

    def remove_rule(self, rid: int, check: bool = True) -> List[Cycle]:
        return self.apply_batch((), [rid], check=check)

    # -- queries (reduce over the forks) ------------------------------------------

    def flows_on(self, link) -> List[Tuple[int, int]]:
        spans: List[Tuple[int, int]] = []
        for shard_spans in self._spec_fan_out("flows_on", (link,)):
            spans.extend(shard_spans)
        return normalize(spans)

    def links(self) -> List[Link]:
        seen: Dict[Link, None] = {}
        for shard_links in self._spec_fan_out("links"):
            for link in shard_links:
                seen.setdefault(link)
        return list(seen)

    def find_loops(self) -> List[Cycle]:
        seen: Dict[Cycle, None] = {}
        for shard_loops in self._spec_fan_out("find_loops"):
            for cycle in shard_loops:
                seen.setdefault(cycle)
        return list(seen)

    def reachable(self, src: object, dst: object) -> List[Tuple[int, int]]:
        spans: List[Tuple[int, int]] = []
        for shard_spans in self._spec_fan_out("reachable", (src, dst)):
            spans.extend(shard_spans)
        return normalize(spans)

    def find_blackholes(self) -> Dict[object, List[Tuple[int, int]]]:
        merged: Dict[object, IntervalSet] = {}
        for shard_holes in self._spec_fan_out("find_blackholes"):
            for node, spans in shard_holes.items():
                merged[node] = merged.get(node, IntervalSet()) | IntervalSet(spans)
        return {node: spans.spans for node, spans in merged.items()}

    def shard_sizes(self) -> List[Tuple[int, int]]:
        return list(self._spec_fan_out("stats"))

    @property
    def total_atoms(self) -> int:
        return sum(atoms for _rules, atoms in self.shard_sizes())

    def check_invariants(self) -> None:
        self._spec_fan_out("check_invariants")

    def state_digest(self):
        """Speculative state is ephemeral: no digest is maintained."""
        return None

    # -- lifecycle ---------------------------------------------------------------

    def discard(self) -> None:
        """Drop the per-worker forks; idempotent."""
        if self._discarded:
            return
        self._discarded = True
        try:
            self._parent._fan_out("spec_discard", (self.spec_id,))
        except Exception:
            # A shard that lost its fork (restart) has nothing to drop.
            pass

    def close(self) -> None:
        self.discard()

    def __getattr__(self, name: str):
        parent = self.__dict__.get("_parent")
        if parent is None:
            raise AttributeError(name)
        return getattr(parent, name)

    def __repr__(self) -> str:
        return (f"ParallelSpeculation(id={self.spec_id}, "
                f"shards={self.num_shards}, rules={self.num_rules}, "
                f"discarded={self._discarded})")
