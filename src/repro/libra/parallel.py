"""Process-parallel sharding: Libra's map/reduce with real workers.

:class:`ParallelShardedDeltaNet` runs one OS process per header-space
shard.  Each worker owns an independent :class:`~repro.core.deltanet.
DeltaNet` (plus its incremental loop checker) for its slice and serves
commands over a dedicated duplex pipe.  The parent performs the *map*
step — clipping rules to shards, exactly as
:class:`~repro.libra.sharding.ShardedDeltaNet` does — then fans a batch
(or a query) out to every touched worker and merges the replies: the
*reduce* step.  Because workers are separate processes, the per-shard
update sweeps and loop checks run truly concurrently, GIL-free.

Loop checking runs *inside* the workers (the checker chases the shard's
own persistent forwarding index, which lives and dies with the worker);
workers therefore return canonical loop cycles, not delta-graphs,
keeping the pipe traffic small.

When worker processes cannot be spawned (restricted sandboxes, platforms
without a working ``multiprocessing``), the class degrades transparently
to in-process shard servers with identical semantics — ``.parallel``
reports which mode is live.  Always :meth:`close` (or use as a context
manager) to reap the workers.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.checkers.blackholes import find_blackholes as _shard_blackholes
from repro.checkers.loops import LoopChecker, find_forwarding_loops
from repro.checkers.reachability import reachable_atoms
from repro.core.atomset import atoms_to_interval_set
from repro.core.deltanet import DeltaNet
from repro.core.intervals import IntervalSet, normalize
from repro.core.rules import Link, Rule
from repro.libra.sharding import ShardRouter

#: A forwarding cycle as a canonical tuple of nodes (see Loop.canonical).
Cycle = Tuple[object, ...]


class _ShardServer:
    """One shard's state and command dispatch.

    Runs inside a worker process normally; the inline fallback calls
    :meth:`handle` directly in the parent, so both execution modes share
    one implementation.
    """

    def __init__(self, width: int, gc: bool) -> None:
        self.net = DeltaNet(width=width, gc=gc)
        self.checker = LoopChecker(self.net)

    def handle(self, method: str, args: tuple):
        return getattr(self, "do_" + method)(*args)

    # -- updates ---------------------------------------------------------------

    def do_apply_batch(self, inserts: List[Rule], removals: List[int],
                       check: bool) -> List[Cycle]:
        delta = self.net.apply_batch(inserts, removals)
        if not check or delta.is_empty():
            # An empty delta changed no label in this shard — nothing
            # to chase, and nothing to ship back over the pipe.
            return []
        return [loop.cycle for loop in self.checker.check_update(delta)]

    # -- queries (each worker answers for its slice only) ------------------------

    def do_flows_on(self, link: Link) -> List[Tuple[int, int]]:
        return self.net.flows_on(link)

    def do_links(self) -> List[Link]:
        return list(self.net.links())

    def do_dump_flows(self) -> Dict[Link, List[Tuple[int, int]]]:
        return {link: self.net.flows_on(link) for link in self.net.links()}

    def do_find_loops(self) -> List[Cycle]:
        return [loop.cycle for loop in find_forwarding_loops(self.net)]

    def do_reachable(self, src: object, dst: object) -> List[Tuple[int, int]]:
        atoms = reachable_atoms(self.net, src, dst)
        return atoms_to_interval_set(atoms, self.net.atoms)

    def do_find_blackholes(self) -> Dict[object, List[Tuple[int, int]]]:
        return {node: atoms_to_interval_set(atoms, self.net.atoms)
                for node, atoms in _shard_blackholes(self.net).items()}

    def do_owner_target(self, source: object, point: int) -> Optional[Link]:
        rule = self.net.owner_rule(self.net.atoms.atom_at(point), source)
        return rule.link if rule else None

    def do_stats(self) -> Tuple[int, int]:
        return self.net.num_rules, self.net.num_atoms

    def do_check_invariants(self) -> None:
        self.net.check_invariants()

    # -- persistence (per-shard snapshot fan-out) --------------------------------

    def do_snapshot(self) -> dict:
        return self.net.state_dict()

    def do_restore(self, state: dict) -> None:
        self.net = DeltaNet.from_state(state)
        self.checker = LoopChecker(self.net)


def _shard_worker(conn, width: int, gc: bool) -> None:
    """Worker process main loop: serve commands until EOF/None."""
    server = _ShardServer(width, gc)
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message is None:
                break
            method, args = message
            try:
                conn.send((True, server.handle(method, args)))
            except Exception as exc:  # forwarded to the caller; stay alive
                conn.send((False, exc))
    finally:
        conn.close()


class _ProcessEndpoint:
    """Parent-side handle of one worker: submit now, collect later."""

    def __init__(self, ctx, width: int, gc: bool) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_shard_worker, args=(child_conn, width, gc), daemon=True)
        self.process.start()
        child_conn.close()

    def submit(self, method: str, args: tuple) -> None:
        self.conn.send((method, args))

    def result(self):
        ok, value = self.conn.recv()
        if not ok:
            raise value
        return value

    def close(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)


class _InlineEndpoint:
    """Same submit/result surface, served in-process (fallback mode)."""

    def __init__(self, width: int, gc: bool) -> None:
        self.server = _ShardServer(width, gc)
        self._pending: Optional[tuple] = None

    def submit(self, method: str, args: tuple) -> None:
        try:
            self._pending = (True, self.server.handle(method, args))
        except Exception as exc:
            self._pending = (False, exc)

    def result(self):
        ok, value = self._pending
        self._pending = None
        if not ok:
            raise value
        return value

    def close(self) -> None:
        pass


class ParallelShardedDeltaNet(ShardRouter):
    """Disjoint-slice Delta-nets served by one worker process per shard.

    The update surface mirrors :class:`~repro.libra.sharding.
    ShardedDeltaNet` (whose :class:`~repro.libra.sharding.ShardRouter`
    map step it shares), except updates return the *loops* the
    per-shard incremental checkers found (pass ``check=False`` to skip
    checking) rather than delta-graphs — deltas live and die inside the
    workers.

    ``start_method`` picks the :mod:`multiprocessing` context (``fork``
    where available is fastest); ``force_inline=True`` skips processes
    entirely and serves every shard in-process.
    """

    def __init__(self, shards: Optional[Iterable[Tuple[int, int]]] = None,
                 width: int = 32, gc: bool = False,
                 start_method: Optional[str] = None,
                 force_inline: bool = False) -> None:
        super().__init__(shards, width)
        self._closed = False
        self._poisoned = False
        self.parallel = False
        workers: List[object] = []
        if not force_inline:
            try:
                ctx = (multiprocessing.get_context(start_method)
                       if start_method else multiprocessing.get_context())
                for _ in self.slices:
                    # Append as we go: a partial spawn failure (fd or
                    # process limits) must reap the workers already
                    # started, not leak them.
                    workers.append(_ProcessEndpoint(ctx, width, gc))
                self.parallel = True
            except Exception:
                for endpoint in workers:
                    endpoint.close()
                workers = []
        if not workers:
            workers = [_InlineEndpoint(width, gc) for _ in self.slices]
        self._workers = workers

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut the workers down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for endpoint in self._workers:
            endpoint.close()

    def __enter__(self) -> "ParallelShardedDeltaNet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- fan-out plumbing ----------------------------------------------------------

    def _fan_out(self, method: str, args: tuple = (),
                 indices: Optional[Iterable[int]] = None) -> List[object]:
        """Send a command to the selected workers, then collect replies.

        All submits go out before the first result is awaited — with
        process workers the shards genuinely execute concurrently.
        Every reply is drained even when one worker errors (an undrained
        pipe would pair the *next* command with this command's stale
        reply); the first error is re-raised after the sweep.
        """
        chosen = (list(indices) if indices is not None
                  else range(len(self._workers)))
        submitted: List[int] = []
        first_error: Optional[Exception] = None
        for index in chosen:
            try:
                self._workers[index].submit(method, args)
                submitted.append(index)
            except Exception as exc:  # dead worker / broken pipe
                if first_error is None:
                    first_error = exc
        results: List[object] = []
        for index in submitted:
            try:
                results.append(self._workers[index].result())
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    # -- updates (map: clip; reduce: merge worker loop reports) --------------------

    def apply_batch(self, rules_to_insert: Iterable[Rule] = (),
                    rids_to_remove: Iterable[int] = (),
                    check: bool = True) -> List[Cycle]:
        """Apply a batch across shards concurrently; merge found loops.

        Same order semantics as :meth:`DeltaNet.apply_batch` (removals
        first).  The whole batch is validated (by the shared
        :meth:`~repro.libra.sharding.ShardRouter.route_batch`) before
        anything is sent, so a rejected batch leaves every shard
        untouched.
        """
        if self._poisoned:
            raise RuntimeError(
                "parallel verifier is inconsistent after a failed batch; "
                "rebuild it (queries on the partial state still work)")
        inserts = list(rules_to_insert)
        removals = list(rids_to_remove)
        per_shard = self.route_batch(inserts, removals)
        touched = [index for index, (ins, rem) in enumerate(per_shard)
                   if ins or rem]
        # Per-shard payloads differ, so submit individually (all sends
        # before the first await — the workers run concurrently), then
        # drain every successfully submitted reply before raising any
        # error, as in _fan_out.  A failed submit (dead worker) gets no
        # drain — it owes no reply.
        submitted: List[int] = []
        first_error: Optional[Exception] = None
        for index in touched:
            shard_inserts, shard_removals = per_shard[index]
            try:
                self._workers[index].submit(
                    "apply_batch", (shard_inserts, shard_removals, check))
                submitted.append(index)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        loops: Dict[Cycle, None] = {}
        for index in submitted:
            try:
                for cycle in self._workers[index].result():
                    loops.setdefault(cycle)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            # Some shards may have applied their sub-batch while others
            # did not — without two-phase commit the instance cannot be
            # reconciled, so refuse all further *updates* rather than
            # risk phantom rules on a retry.  Queries stay available for
            # inspecting the partial state.
            self._poisoned = True
            raise first_error
        return list(loops)

    def insert_rule(self, rule: Rule, check: bool = True) -> List[Cycle]:
        return self.apply_batch([rule], (), check=check)

    def remove_rule(self, rid: int, check: bool = True) -> List[Cycle]:
        return self.apply_batch((), [rid], check=check)

    # -- queries (reduce over all shards) ------------------------------------------

    def flows_on(self, link) -> List[Tuple[int, int]]:
        spans: List[Tuple[int, int]] = []
        for shard_spans in self._fan_out("flows_on", (link,)):
            spans.extend(shard_spans)
        return normalize(spans)

    def links(self) -> List[Link]:
        seen: Dict[Link, None] = {}
        for shard_links in self._fan_out("links"):
            for link in shard_links:
                seen.setdefault(link)
        return list(seen)

    def dump_flows(self) -> Dict[Link, List[Tuple[int, int]]]:
        """Every link's flows, merged across shards (tests/diagnostics)."""
        merged: Dict[Link, List[Tuple[int, int]]] = {}
        for shard_dump in self._fan_out("dump_flows"):
            for link, spans in shard_dump.items():
                merged.setdefault(link, []).extend(spans)
        return {link: normalize(spans) for link, spans in merged.items()}

    def find_loops(self) -> List[Cycle]:
        seen: Dict[Cycle, None] = {}
        for shard_loops in self._fan_out("find_loops"):
            for cycle in shard_loops:
                seen.setdefault(cycle)
        return list(seen)

    def reachable(self, src: object, dst: object) -> List[Tuple[int, int]]:
        spans: List[Tuple[int, int]] = []
        for shard_spans in self._fan_out("reachable", (src, dst)):
            spans.extend(shard_spans)
        return normalize(spans)

    def find_blackholes(self) -> Dict[object, List[Tuple[int, int]]]:
        merged: Dict[object, IntervalSet] = {}
        for shard_holes in self._fan_out("find_blackholes"):
            for node, spans in shard_holes.items():
                merged[node] = merged.get(node, IntervalSet()) | IntervalSet(spans)
        return {node: spans.spans for node, spans in merged.items()}

    def owner_link_at(self, source: object, point: int) -> Optional[Link]:
        """The link a ``point``-packet takes at ``source``, if any."""
        index = self.shard_of_point(point)
        return self._fan_out("owner_target", (source, point), [index])[0]

    def shard_sizes(self) -> List[Tuple[int, int]]:
        """(rules, atoms) per shard — the load-balance view."""
        return list(self._fan_out("stats"))

    @property
    def total_atoms(self) -> int:
        return sum(atoms for _rules, atoms in self.shard_sizes())

    # -- persistence (see repro.persist) ----------------------------------------

    def state_dict(self) -> dict:
        """Router bookkeeping plus every worker's Delta-net state.

        The per-shard snapshots are gathered over the worker pipes
        concurrently — each worker serializes its own slice while the
        others do the same.
        """
        state = self.router_state()
        state["nets"] = list(self._fan_out("snapshot"))
        return state

    @classmethod
    def from_state(cls, state: dict, gc: bool = False,
                   start_method: Optional[str] = None,
                   force_inline: bool = False) -> "ParallelShardedDeltaNet":
        """Rebuild shards in their workers (restore fan-out).

        Worker-pool shape (``start_method``/``force_inline``) is a host
        property, not session state — callers choose it per restore.
        """
        slices = [tuple(pair) for pair in state["slices"]]
        instance = cls(slices, width=state["width"], gc=gc,
                       start_method=start_method, force_inline=force_inline)
        instance._restore_router(state)
        # Per-shard payloads differ: submit all restores before awaiting
        # the first reply so the workers rebuild concurrently.
        for index, net_state in enumerate(state["nets"]):
            instance._workers[index].submit("restore", (net_state,))
        for index in range(len(state["nets"])):
            instance._workers[index].result()
        return instance

    def check_invariants(self) -> None:
        self._fan_out("check_invariants")

    def __repr__(self) -> str:
        mode = "processes" if self.parallel else "inline"
        return (f"ParallelShardedDeltaNet(shards={self.num_shards}, "
                f"rules={self.num_rules}, mode={mode})")
