"""Disjoint header-space shards, each owning an independent Delta-net.

A shard owns a half-closed slice ``[lo : hi)`` of the destination
space.  A rule whose prefix intersects several shards is *split*: each
shard receives the clipped sub-rule (same switch/priority/action), so
per-shard semantics are exact on the shard's slice.  Queries either
target one shard (a point or subnet query) or fan out and merge.

The map step of Libra's MapReduce is the per-shard rule routing; the
reduce step is the merge in :meth:`ShardedDeltaNet.find_loops` /
:meth:`flows_on`.  Shapes to note: total atoms across shards can exceed
a monolithic Delta-net's count by at most 2x(shards-1) (clipping adds
boundaries), while the largest single structure shrinks by ~1/shards —
the property that made Libra scale out.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.checkers.loops import Loop, LoopChecker, find_forwarding_loops
from repro.core.delta_graph import DeltaGraph
from repro.core.deltanet import DeltaNet
from repro.core.intervals import normalize
from repro.core.rules import Action, Rule, validate_batch_ops


def even_shards(count: int, width: int = 32) -> List[Tuple[int, int]]:
    """Split ``[0, 2^width)`` into ``count`` equal half-closed slices."""
    if count < 1:
        raise ValueError("need at least one shard")
    space = 1 << width
    if count > space:
        raise ValueError("more shards than addresses")
    bounds = [space * i // count for i in range(count + 1)]
    return list(zip(bounds, bounds[1:]))


def validate_slices(slices: List[Tuple[int, int]], width: int) -> None:
    """Check that ``slices`` tile ``[0, 2^width)`` contiguously."""
    space = 1 << width
    cursor = 0
    for lo, hi in slices:
        if lo != cursor or hi <= lo:
            raise ValueError(
                f"shards must tile [0, 2^{width}) contiguously; "
                f"got slice [{lo}:{hi}) at cursor {cursor}")
        cursor = hi
    if cursor != space:
        raise ValueError("shards do not cover the full space")


def clip_rule(rule: Rule, rid: int, lo: int, hi: int) -> Rule:
    """``rule`` restricted to ``[lo : hi)``, re-identified as ``rid``."""
    clip_lo, clip_hi = max(rule.lo, lo), min(rule.hi, hi)
    if rule.action is Action.DROP:
        return Rule.drop(rid, clip_lo, clip_hi, rule.priority, rule.source)
    return Rule.forward(rid, clip_lo, clip_hi, rule.priority,
                        rule.source, rule.target)


class ShardRouter:
    """The map step's shared machinery: slice geometry, rule clipping,
    and the ``rid -> (shard, clipped rid)`` placement bookkeeping.

    Base class of both the serial :class:`ShardedDeltaNet` and the
    process-parallel :class:`~repro.libra.parallel.
    ParallelShardedDeltaNet`, so routing/validation semantics cannot
    diverge between the two.
    """

    def __init__(self, shards: Optional[Iterable[Tuple[int, int]]],
                 width: int) -> None:
        self.width = width
        self.slices: List[Tuple[int, int]] = (
            list(shards) if shards is not None else even_shards(4, width))
        validate_slices(self.slices, width)
        self._starts = [lo for lo, _hi in self.slices]
        #: rid -> list of (shard index, clipped rid)
        self._placement: Dict[int, List[Tuple[int, int]]] = {}
        self._next_clipped = 0

    @property
    def num_shards(self) -> int:
        return len(self.slices)

    @property
    def num_rules(self) -> int:
        return len(self._placement)

    def shard_of_point(self, point: int) -> int:
        index = bisect.bisect_right(self._starts, point) - 1
        if index < 0 or not (self.slices[index][0] <= point < self.slices[index][1]):
            raise ValueError(f"point {point} outside the header space")
        return index

    def shards_of_interval(self, lo: int, hi: int) -> List[int]:
        first = self.shard_of_point(lo)
        last = self.shard_of_point(hi - 1)
        return list(range(first, last + 1))

    def route_batch(self, rules_to_insert: Iterable[Rule] = (),
                    rids_to_remove: Iterable[int] = ()
                    ) -> List[Tuple[List[Rule], List[int]]]:
        """The map step alone: validate and clip a batch per shard.

        Returns one ``(clipped inserts, clipped removal rids)`` pair per
        shard, committing the placement bookkeeping.  The whole batch is
        validated before any state changes, so a rejected batch leaves
        no trace.  Callers then apply each shard's sub-batch —
        sequentially here, concurrently in the parallel subclass.
        """
        inserts = list(rules_to_insert)
        removals = list(rids_to_remove)
        validate_batch_ops(inserts, removals, self._placement, self.width)
        per_shard: List[Tuple[List[Rule], List[int]]] = [
            ([], []) for _ in self.slices]
        for rid in removals:
            for index, clipped_rid in self._placement.pop(rid):
                per_shard[index][1].append(clipped_rid)
        for rule in inserts:
            placement: List[Tuple[int, int]] = []
            for index in self.shards_of_interval(rule.lo, rule.hi):
                slice_lo, slice_hi = self.slices[index]
                clipped_rid = self._next_clipped
                self._next_clipped += 1
                per_shard[index][0].append(
                    clip_rule(rule, clipped_rid, slice_lo, slice_hi))
                placement.append((index, clipped_rid))
            self._placement[rule.rid] = placement
        return per_shard

    # -- persistence (see repro.persist) ----------------------------------------

    def router_state(self) -> dict:
        """The map step's bookkeeping as deterministic plain data."""
        return {
            "width": self.width,
            "slices": [list(pair) for pair in self.slices],
            "next_clipped": self._next_clipped,
            "placement": [(rid, [list(pair) for pair in placement])
                          for rid, placement in
                          sorted(self._placement.items())],
        }

    def _restore_router(self, state: dict) -> None:
        self._next_clipped = state["next_clipped"]
        self._placement = {
            rid: [tuple(pair) for pair in placement]
            for rid, placement in state["placement"]}


class ShardedDeltaNet(ShardRouter):
    """Independent Delta-net instances over disjoint header-space slices."""

    def __init__(self, shards: Iterable[Tuple[int, int]] = None,
                 width: int = 32, gc: bool = False) -> None:
        super().__init__(shards, width)
        self.nets: List[DeltaNet] = [DeltaNet(width=width, gc=gc)
                                     for _ in self.slices]
        #: One incremental loop checker per shard, bound to that shard's
        #: persistent forwarding index — checks stay local to the shards
        #: an update touched and never rebuild any per-check structure.
        self.checkers: List[LoopChecker] = [LoopChecker(net)
                                            for net in self.nets]

    @property
    def total_atoms(self) -> int:
        return sum(net.num_atoms for net in self.nets)

    # -- rule lifecycle (the "map" step) -------------------------------------------

    def insert_rule(self, rule: Rule) -> List[int]:
        """Clip the rule into its shards; returns the shard indices."""
        return sorted(self.apply_insert(rule))

    def remove_rule(self, rid: int) -> List[int]:
        return sorted(self.apply_remove(rid))

    def apply_insert(self, rule: Rule) -> Dict[int, DeltaGraph]:
        """Insert ``rule``; return each touched shard's delta-graph.

        Atom identifiers in the per-shard delta-graphs are local to that
        shard's Delta-net, so the deltas are returned per shard rather
        than merged (the map step keeps shards fully independent).
        """
        if rule.rid in self._placement:
            raise ValueError(f"duplicate rule id {rule.rid}")
        placement: List[Tuple[int, int]] = []
        deltas: Dict[int, DeltaGraph] = {}
        for index in self.shards_of_interval(rule.lo, rule.hi):
            slice_lo, slice_hi = self.slices[index]
            clipped_rid = self._next_clipped
            self._next_clipped += 1
            clipped = clip_rule(rule, clipped_rid, slice_lo, slice_hi)
            deltas[index] = self.nets[index].insert_rule(clipped)
            placement.append((index, clipped_rid))
        self._placement[rule.rid] = placement
        return deltas

    def apply_remove(self, rid: int) -> Dict[int, DeltaGraph]:
        """Remove a rule; return each touched shard's delta-graph."""
        placement = self._placement.pop(rid, None)
        if placement is None:
            raise KeyError(f"unknown rule id {rid}")
        return {index: self.nets[index].remove_rule(clipped_rid)
                for index, clipped_rid in placement}

    def apply_batch(self, rules_to_insert: Iterable[Rule] = (),
                    rids_to_remove: Iterable[int] = ()
                    ) -> Dict[int, DeltaGraph]:
        """Batched map step: route the batch, then one
        :meth:`DeltaNet.apply_batch` per touched shard.  Returns each
        touched shard's aggregated delta-graph."""
        per_shard = self.route_batch(rules_to_insert, rids_to_remove)
        deltas: Dict[int, DeltaGraph] = {}
        for index, (shard_inserts, shard_removals) in enumerate(per_shard):
            if shard_inserts or shard_removals:
                deltas[index] = self.nets[index].apply_batch(
                    shard_inserts, shard_removals)
        return deltas

    def check_update(self, deltas: Dict[int, DeltaGraph]) -> List[Loop]:
        """Incremental per-shard loop check over ``apply_*`` deltas.

        Each touched shard's checker chases its own forwarding index;
        shards with an empty delta (no label changed) are skipped
        outright.  Atom ids in the returned loops are shard-local, but
        cycles (node tuples) are globally meaningful.
        """
        loops: List[Loop] = []
        for index, delta in deltas.items():
            if delta:
                loops.extend(self.checkers[index].check_update(delta))
        return loops

    # -- queries (the "reduce" step) --------------------------------------------------

    def flows_on(self, link) -> List[Tuple[int, int]]:
        spans: List[Tuple[int, int]] = []
        for net in self.nets:
            spans.extend(net.flows_on(link))
        return normalize(spans)

    def find_loops(self) -> List[Loop]:
        loops: List[Loop] = []
        for net in self.nets:
            loops.extend(find_forwarding_loops(net))
        return loops

    def owner_link_at(self, source: object, point: int):
        """The link a ``point``-packet takes at ``source``, if any."""
        net = self.nets[self.shard_of_point(point)]
        atom = net.atoms.atom_at(point)
        rule = net.owner_rule(atom, source)
        return rule.link if rule else None

    def shard_sizes(self) -> List[Tuple[int, int]]:
        """(rules, atoms) per shard — the load-balance view."""
        return [(net.num_rules, net.num_atoms) for net in self.nets]

    def state_digest(self):
        """Componentwise combination of the per-shard digests — equal to
        the digest an unsharded net over the same state would report per
        component set (see :mod:`repro.integrity.digest`)."""
        from repro.integrity.digest import combine_digests

        return combine_digests(net.state_digest() for net in self.nets)

    # -- persistence (see repro.persist) ----------------------------------------

    def state_dict(self) -> dict:
        """Router bookkeeping plus one Delta-net state per shard."""
        state = self.router_state()
        state["nets"] = [net.state_dict() for net in self.nets]
        return state

    @classmethod
    def from_state(cls, state: dict) -> "ShardedDeltaNet":
        """Rebuild all shards; per-shard warm start, shared router."""
        slices = [tuple(pair) for pair in state["slices"]]
        gc = bool(state["nets"]) and state["nets"][0]["gc"]
        sharded = cls(slices, width=state["width"], gc=gc)
        sharded._restore_router(state)
        sharded.nets = [DeltaNet.from_state(net_state)
                        for net_state in state["nets"]]
        sharded.checkers = [LoopChecker(net) for net in sharded.nets]
        return sharded

    # -- speculation (see repro.core.speculative) --------------------------------

    def speculate(self) -> "SpeculativeShardedDeltaNet":
        """Fork a copy-on-write what-if child sharing this net's state."""
        return SpeculativeShardedDeltaNet.from_parent(self)

    def __repr__(self) -> str:
        return (f"ShardedDeltaNet(shards={self.num_shards}, "
                f"rules={self.num_rules}, total_atoms={self.total_atoms})")


class SpeculativeShardedDeltaNet(ShardedDeltaNet):
    """A sharded net whose shards are copy-on-write speculative children.

    Router bookkeeping is copied shallowly — placement lists are popped
    and created whole, never mutated in place, so sharing the list
    objects with the parent is safe — and each shard forks via
    :meth:`repro.core.speculative.SpeculativeDeltaNet.from_parent`.
    Staleness is enforced per shard: once the parent applies any update,
    the child's next mutation raises
    :class:`~repro.core.speculative.StaleSpeculationError`.
    """

    @classmethod
    def from_parent(cls, parent: ShardedDeltaNet) -> "SpeculativeShardedDeltaNet":
        from repro.core.speculative import SpeculativeDeltaNet

        child = cls.__new__(cls)
        child.width = parent.width
        child.slices = list(parent.slices)
        child._starts = list(parent._starts)
        child._placement = dict(parent._placement)
        child._next_clipped = parent._next_clipped
        child.nets = [SpeculativeDeltaNet.from_parent(net)
                      for net in parent.nets]
        child.checkers = [LoopChecker(net) for net in child.nets]
        return child

    def state_digest(self):
        """Speculative state is ephemeral: no digest is maintained."""
        return None

    def __repr__(self) -> str:
        return (f"SpeculativeShardedDeltaNet(shards={self.num_shards}, "
                f"rules={self.num_rules}, total_atoms={self.total_atoms})")
