"""Delta-net: Real-time Network Verification Using Atoms (NSDI 2017).

A complete, from-scratch Python reproduction of Horn, Kheradmand &
Prasad's Delta-net data-plane checker and everything its evaluation
depends on: the Veriflow-RI baseline, an atomic-predicates verifier,
topology/BGP/routing substrates, an SDN-IP control-plane emulation,
dataset generators for all eight Table 2 workloads, and the replay and
analysis harness behind every table and figure.

Quickstart::

    from repro import DeltaNet, LoopChecker

    net = DeltaNet()
    r1 = net.make_rule(0, "10.0.0.0/8", priority=10, source="s1", target="s2")
    delta = net.insert_rule(r1)
    loops = LoopChecker(net).check_update(delta)
"""

from repro.core import (
    AtomTable, DeltaGraph, DeltaNet, Interval, IntervalSet, Link, Rule,
    prefix_to_interval,
)
from repro.checkers import (
    LoopChecker, all_pairs_reachability, find_forwarding_loops,
    link_failure_impact, reachable_atoms,
)
from repro.veriflow import VeriflowRI
from repro.apv import APVerifier
from repro.netplumber import NetPlumber
from repro.libra import ShardedDeltaNet, even_shards

__version__ = "1.0.0"

__all__ = [
    "AtomTable", "DeltaGraph", "DeltaNet", "Interval", "IntervalSet",
    "Link", "Rule", "prefix_to_interval",
    "LoopChecker", "all_pairs_reachability", "find_forwarding_loops",
    "link_failure_impact", "reachable_atoms",
    "VeriflowRI", "APVerifier", "NetPlumber",
    "ShardedDeltaNet", "even_shards",
    "__version__",
]
