"""Delta-net: Real-time Network Verification Using Atoms (NSDI 2017).

A complete, from-scratch Python reproduction of Horn, Kheradmand &
Prasad's Delta-net data-plane checker and everything its evaluation
depends on: the Veriflow-RI baseline, an atomic-predicates verifier, a
NetPlumber-style plumbing graph, Libra-style header-space sharding,
topology/BGP/routing substrates, an SDN-IP control-plane emulation,
dataset generators for all eight Table 2 workloads, and the replay and
analysis harness behind every table and figure.

Quickstart — the unified session API::

    from repro import (VerificationSession, LoopProperty,
                       BlackholeProperty, ReachabilityProperty)

    session = VerificationSession("deltanet")   # or "veriflow", "apv",
                                                # "netplumber", "sharded"
    session.watch(LoopProperty())
    session.watch(BlackholeProperty())
    session.watch(ReachabilityProperty("s1", "s2"))

    rule = session.make_rule(0, "10.0.0.0/8", priority=10,
                             source="s1", target="s2")
    result = session.insert(rule)       # checked incrementally
    result.violations                   # new loop/blackhole/... alerts
    result.latency                      # seconds, per paper §4.3.1

    with session.batch() as txn:        # aggregate into one delta-graph
        session.insert(r1)
        session.remove(2)
    txn.result.violations

    from repro import FlowsOn, Reachable, LinkDown, Loops

    session.query(FlowsOn(("s1", "s2")))        # uniform typed queries,
    session.query(Reachable("s1", "s2"))        # any backend — one
    session.query(LinkDown(("s1", "s2")))       # QueryResult envelope
    session.query(Loops())

    child = session.speculate()         # copy-on-write what-if fork
    child.insert(candidate_rule)        # invisible to the parent
    child.query(Loops())                # evaluated against the fork
    child.commit()                      # or child.discard()

Every backend is constructed, fed updates, and queried identically; see
``available_backends()`` and ``docs/api.md``.  The original classes
(``DeltaNet``, ``VeriflowRI``, ``APVerifier``, ``NetPlumber``,
``ShardedDeltaNet``) and the ``repro.checkers`` functions remain
importable for direct, backend-specific use — new code should prefer the
session API.
"""

from repro.core import (
    AtomTable, DeltaGraph, DeltaNet, Interval, IntervalSet, Link, Rule,
    prefix_to_interval,
)
from repro.checkers import (
    LoopChecker, all_pairs_reachability, find_forwarding_loops,
    link_failure_impact, reachable_atoms,
)
from repro.veriflow import VeriflowRI
from repro.apv import APVerifier
from repro.netplumber import NetPlumber
from repro.libra import ShardedDeltaNet, even_shards
from repro.api import (
    BackendAdapter, BackendUpdate, BlackholeProperty, FlowsOn,
    IsolationProperty, LinkDown, LoopProperty, Loops, Property,
    QueryResult, Reachable, ReachabilityProperty, SpeculativeSession,
    StaleSpeculationError, UnknownBackendError, UpdateResult,
    VerificationSession, Violation, WaypointProperty, available_backends,
    create_backend, register_backend,
)

__version__ = "1.1.0"

__all__ = [
    # the unified API (preferred entry point)
    "VerificationSession", "UpdateResult", "Violation",
    "FlowsOn", "Reachable", "LinkDown", "Loops", "QueryResult",
    "SpeculativeSession", "StaleSpeculationError",
    "BackendAdapter", "BackendUpdate", "UnknownBackendError",
    "available_backends", "create_backend", "register_backend",
    "Property", "LoopProperty", "BlackholeProperty",
    "ReachabilityProperty", "WaypointProperty", "IsolationProperty",
    # core structures
    "AtomTable", "DeltaGraph", "DeltaNet", "Interval", "IntervalSet",
    "Link", "Rule", "prefix_to_interval",
    # checkers (legacy direct entry points)
    "LoopChecker", "all_pairs_reachability", "find_forwarding_loops",
    "link_failure_impact", "reachable_atoms",
    # native verifiers (legacy direct entry points)
    "VeriflowRI", "APVerifier", "NetPlumber",
    "ShardedDeltaNet", "even_shards",
    "__version__",
]
