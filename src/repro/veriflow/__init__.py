"""Veriflow-RI: a re-implementation of Veriflow's core idea (paper §4.3.1).

The paper compares Delta-net against its own re-implementation of
Veriflow (Khurshid et al., NSDI'13), called *Veriflow-RI*, because neither
Veriflow's code nor its datasets are public.  Per §4.3.1, Veriflow-RI:

* matches a single packet-header field, so the trie is *binary*
  (one-dimensional), not ternary;
* on each rule update, finds all rules in the network overlapping the
  updated rule (via the trie), partitions the affected packet space into
  equivalence classes (ECs), and constructs one forwarding graph per EC by
  querying every switch's highest-priority match;
* checks invariants (forwarding loops) by traversing each EC's graph.

Its space complexity is linear in the number of rules; its time
complexity is quadratic — which is exactly the behaviour the benchmarks
reproduce.
"""

from repro.veriflow.trie import PrefixTrie
from repro.veriflow.ecs import equivalence_classes
from repro.veriflow.verifier import VeriflowRI

__all__ = ["PrefixTrie", "equivalence_classes", "VeriflowRI"]
