"""Chen's Veriflow optimization: interval BST instead of a trie (§5).

"Chen [10] shows how to optimize Veriflow, while retaining its core
algorithm.  Similar to [10], we represent IP prefixes in a balanced
binary search tree."

:class:`VeriflowChen` keeps Veriflow's per-update algorithm exactly
(overlap query -> ECs -> per-EC forwarding graph -> loop check) but
replaces the binary trie with the augmented interval tree of
:mod:`repro.structures.interval_tree`.  Unlike the trie it handles
arbitrary (non-prefix) intervals natively and avoids per-bit node
chains; the ablation benchmark compares the two on time and memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.rules import Link, Rule
from repro.structures.interval_tree import IntervalTree
from repro.veriflow.ecs import equivalence_classes
from repro.veriflow.verifier import ECGraph, UpdateResult


class VeriflowChen:
    """Veriflow's algorithm over an interval-tree rule index."""

    def __init__(self, width: int = 32) -> None:
        self.width = width
        self.index = IntervalTree()
        self.rules: Dict[int, Rule] = {}
        self._serials: Dict[int, int] = {}  # rid -> interval-tree serial
        self.rules_by_link: Dict[Link, Set[int]] = {}
        self.switches: Set[object] = set()

    @property
    def num_rules(self) -> int:
        return len(self.rules)

    def insert_rule(self, rule: Rule, check_loops: bool = True) -> UpdateResult:
        if rule.rid in self.rules:
            raise ValueError(f"duplicate rule id {rule.rid}")
        self.rules[rule.rid] = rule
        self._serials[rule.rid] = self.index.insert(rule.lo, rule.hi, rule)
        self.rules_by_link.setdefault(rule.link, set()).add(rule.rid)
        self.switches.add(rule.source)
        return self._check_range(rule, inserted=True, check_loops=check_loops)

    def remove_rule(self, rule_or_rid: Union[Rule, int],
                    check_loops: bool = True) -> UpdateResult:
        rid = rule_or_rid.rid if isinstance(rule_or_rid, Rule) else rule_or_rid
        rule = self.rules.pop(rid, None)
        if rule is None:
            raise KeyError(f"unknown rule id {rid}")
        self.index.remove(rule.lo, self._serials.pop(rid))
        bucket = self.rules_by_link.get(rule.link)
        if bucket is not None:
            bucket.discard(rid)
            if not bucket:
                del self.rules_by_link[rule.link]
        return self._check_range(rule, inserted=False, check_loops=check_loops)

    def _check_range(self, rule: Rule, inserted: bool,
                     check_loops: bool) -> UpdateResult:
        result = UpdateResult(rule=rule, inserted=inserted)
        overlapping = list(self.index.overlapping(rule.lo, rule.hi))
        for ec in equivalence_classes(overlapping, rule.lo, rule.hi):
            graph = self._forwarding_graph(ec)
            result.ec_graphs.append(graph)
            if check_loops:
                for loop in graph.find_loops():
                    result.loops.append((graph.interval, loop))
        return result

    def _forwarding_graph(self, interval: Tuple[int, int]) -> ECGraph:
        point = interval[0]
        best: Dict[object, Rule] = {}
        for rule in self.index.stab(point):
            incumbent = best.get(rule.source)
            if incumbent is None or rule.sort_key > incumbent.sort_key:
                best[rule.source] = rule
        return ECGraph(interval=interval,
                       edges={s: r.target for s, r in best.items()})

    def match_at(self, switch: object, point: int) -> Optional[Rule]:
        best: Optional[Rule] = None
        for rule in self.index.stab(point):
            if rule.source == switch and (best is None or
                                          rule.sort_key > best.sort_key):
                best = rule
        return best

    def __repr__(self) -> str:
        return (f"VeriflowChen(rules={self.num_rules}, "
                f"switches={len(self.switches)})")
