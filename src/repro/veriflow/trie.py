"""A one-dimensional binary prefix trie (Veriflow-RI's core index).

Rules are stored at the trie node of their prefix.  Two query families
serve Veriflow's algorithm:

* ``covering_rules(point)`` / ``match(point)`` — rules whose prefix
  contains an address (all on the root-to-leaf path), used to build
  forwarding graphs by querying each switch's table;
* ``overlapping_rules(lo, plen)`` — rules whose prefix overlaps a given
  prefix: ancestors on the path plus the entire subtree below it, used to
  compute the equivalence classes affected by an update.

Non-prefix intervals (which Delta-net handles natively) are inserted as
their minimal CIDR cover, mirroring Veriflow's reliance on tries (§5:
"Veriflow relies on the fact that overlapping IP prefixes can be
efficiently found using a trie").
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.prefix import interval_to_prefixes
from repro.core.rules import Rule


class _TrieNode:
    __slots__ = ("zero", "one", "rules")

    def __init__(self) -> None:
        self.zero: Optional[_TrieNode] = None
        self.one: Optional[_TrieNode] = None
        self.rules: List[Rule] = []


class PrefixTrie:
    """Binary trie over ``width``-bit prefixes holding rules."""

    def __init__(self, width: int = 32) -> None:
        self.width = width
        self.root = _TrieNode()
        self.num_rules = 0
        self.num_nodes = 1

    # -- path helpers ----------------------------------------------------------

    def _walk(self, value: int, plen: int, create: bool) -> Optional[_TrieNode]:
        node = self.root
        for depth in range(plen):
            bit = (value >> (self.width - 1 - depth)) & 1
            child = node.one if bit else node.zero
            if child is None:
                if not create:
                    return None
                child = _TrieNode()
                self.num_nodes += 1
                if bit:
                    node.one = child
                else:
                    node.zero = child
            node = child
        return node

    def _prefixes_of(self, rule: Rule) -> List[Tuple[int, int]]:
        return interval_to_prefixes(rule.lo, rule.hi, self.width)

    # -- mutation ----------------------------------------------------------------

    def insert(self, rule: Rule) -> None:
        for value, plen in self._prefixes_of(rule):
            node = self._walk(value, plen, create=True)
            node.rules.append(rule)
        self.num_rules += 1

    def remove(self, rule: Rule) -> None:
        for value, plen in self._prefixes_of(rule):
            node = self._walk(value, plen, create=False)
            if node is None or rule not in node.rules:
                raise KeyError(f"rule {rule.rid} not in trie")
            node.rules.remove(rule)
        self.num_rules -= 1

    # -- queries -------------------------------------------------------------------

    def covering_rules(self, point: int) -> Iterator[Rule]:
        """Rules whose prefix contains ``point`` (root-to-leaf path)."""
        node: Optional[_TrieNode] = self.root
        depth = 0
        while node is not None:
            yield from node.rules
            if depth == self.width:
                return
            bit = (point >> (self.width - 1 - depth)) & 1
            node = node.one if bit else node.zero
            depth += 1

    def match(self, point: int) -> Optional[Rule]:
        """Highest-priority rule matching ``point`` (ties by rule id)."""
        best: Optional[Rule] = None
        for rule in self.covering_rules(point):
            if best is None or rule.sort_key > best.sort_key:
                best = rule
        return best

    def overlapping_rules(self, value: int, plen: int) -> List[Rule]:
        """Rules overlapping the prefix ``value/plen``: ancestors + subtree."""
        out: List[Rule] = []
        node: Optional[_TrieNode] = self.root
        for depth in range(plen):
            if node is None:
                return out
            out.extend(node.rules)
            bit = (value >> (self.width - 1 - depth)) & 1
            node = node.one if bit else node.zero
        if node is None:
            return out
        stack = [node]
        while stack:
            current = stack.pop()
            out.extend(current.rules)
            if current.zero is not None:
                stack.append(current.zero)
            if current.one is not None:
                stack.append(current.one)
        return out

    def overlapping_interval(self, lo: int, hi: int) -> List[Rule]:
        """Rules overlapping the interval ``[lo : hi)`` (de-duplicated)."""
        seen = {}
        for value, plen in interval_to_prefixes(lo, hi, self.width):
            for rule in self.overlapping_rules(value, plen):
                seen[rule.rid] = rule
        return list(seen.values())

    def all_rules(self) -> List[Rule]:
        out = {}
        stack = [self.root]
        while stack:
            node = stack.pop()
            for rule in node.rules:
                out[rule.rid] = rule
            if node.zero is not None:
                stack.append(node.zero)
            if node.one is not None:
                stack.append(node.one)
        return list(out.values())

    def __len__(self) -> int:
        return self.num_rules

    def __repr__(self) -> str:
        return f"PrefixTrie(width={self.width}, rules={self.num_rules}, nodes={self.num_nodes})"
