"""Veriflow-RI: per-update EC computation and forwarding-graph checking.

This follows the description in paper §4.3.1 (and the worked example of
§2.1): on every rule insertion or removal, Veriflow-RI

1. finds all rules anywhere in the network whose prefixes overlap the
   updated rule (global trie query),
2. cuts the updated rule's range into equivalence classes at those rules'
   boundaries,
3. for each EC, builds a forwarding graph by asking *every* switch for
   its highest-priority rule matching an EC representative point,
4. checks each forwarding graph for loops.

Space is linear in the rule count; per-update time is O(ECs x switches x
trie depth) — quadratic in the worst case, which the Appendix-C benchmark
measures directly (max affected ECs per update).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.core.rules import DROP, Link, Rule
from repro.veriflow.ecs import equivalence_classes
from repro.veriflow.trie import PrefixTrie


@dataclass
class ECGraph:
    """One equivalence class and its forwarding graph."""

    interval: Tuple[int, int]
    edges: Dict[object, object]  # source switch -> next hop

    def find_loops(self) -> List[List[object]]:
        """Every cycle in the (functional) forwarding graph.

        One EC graph can hold several node-disjoint cycles at once
        (each node has at most one out-edge, so cycles never share a
        node); an update check must surface *all* of them — returning
        an arbitrary one made the reported loop depend on set iteration
        order, i.e. on hash randomization (a differential-fuzzer find).
        Iteration follows ``edges``'s insertion order, so the result is
        deterministic across processes.
        """
        loops: List[List[object]] = []
        visited: Set[object] = set()
        for start in self.edges:
            if start in visited:
                continue
            path_index: Dict[object, int] = {}
            path: List[object] = []
            node: Optional[object] = start
            while node is not None and node != DROP and node not in visited:
                if node in path_index:
                    loops.append(path[path_index[node]:])
                    break
                path_index[node] = len(path)
                path.append(node)
                node = self.edges.get(node)
            visited.update(path)
        return loops

    def find_loop(self) -> Optional[List[object]]:
        """First cycle in deterministic order, or None (see
        :meth:`find_loops` for why checkers must not stop at one)."""
        loops = self.find_loops()
        return loops[0] if loops else None


@dataclass
class UpdateResult:
    """What Veriflow-RI computed while checking one rule update."""

    rule: Rule
    inserted: bool
    ec_graphs: List[ECGraph] = field(default_factory=list)
    loops: List[Tuple[Tuple[int, int], List[object]]] = field(default_factory=list)

    @property
    def num_ecs(self) -> int:
        return len(self.ec_graphs)


class VeriflowRI:
    """The Veriflow-RI data-plane checker."""

    def __init__(self, width: int = 32) -> None:
        self.width = width
        # One trie for the whole network (§5: Veriflow "relies on the fact
        # that overlapping IP prefixes can be efficiently found using a
        # trie"); rules of all switches share prefix chains, which is what
        # keeps Veriflow's footprint linear in the rule count (Table 5).
        self.trie = PrefixTrie(width)
        self.rules: Dict[int, Rule] = {}
        self.rules_by_link: Dict[Link, Set[int]] = {}
        self.switches: Set[object] = set()

    @property
    def num_rules(self) -> int:
        return len(self.rules)

    # -- rule updates (the checked operations) -----------------------------------

    def insert_rule(self, rule: Rule, check_loops: bool = True) -> UpdateResult:
        if rule.rid in self.rules:
            raise ValueError(f"duplicate rule id {rule.rid}")
        self.rules[rule.rid] = rule
        self.rules_by_link.setdefault(rule.link, set()).add(rule.rid)
        self.switches.add(rule.source)
        self.trie.insert(rule)
        return self._check_range(rule, inserted=True, check_loops=check_loops)

    def remove_rule(self, rule_or_rid: Union[Rule, int],
                    check_loops: bool = True) -> UpdateResult:
        rid = rule_or_rid.rid if isinstance(rule_or_rid, Rule) else rule_or_rid
        rule = self.rules.pop(rid, None)
        if rule is None:
            raise KeyError(f"unknown rule id {rid}")
        bucket = self.rules_by_link.get(rule.link)
        if bucket is not None:
            bucket.discard(rid)
            if not bucket:
                del self.rules_by_link[rule.link]
        self.trie.remove(rule)
        return self._check_range(rule, inserted=False, check_loops=check_loops)

    # -- the core Veriflow computation ---------------------------------------------

    def _check_range(self, rule: Rule, inserted: bool,
                     check_loops: bool) -> UpdateResult:
        result = UpdateResult(rule=rule, inserted=inserted)
        overlapping = self.trie.overlapping_interval(rule.lo, rule.hi)
        for ec_lo, ec_hi in equivalence_classes(overlapping, rule.lo, rule.hi):
            graph = self._forwarding_graph((ec_lo, ec_hi))
            result.ec_graphs.append(graph)
            if check_loops:
                for loop in graph.find_loops():
                    result.loops.append((graph.interval, loop))
        return result

    def _forwarding_graph(self, interval: Tuple[int, int]) -> ECGraph:
        """Build the EC's forwarding graph from one trie traversal.

        One root-to-leaf walk collects every rule in the network matching
        the EC's representative point; grouping by switch and keeping the
        highest priority per switch yields each switch's next hop.
        """
        point = interval[0]
        best: Dict[object, Rule] = {}
        for rule in self.trie.covering_rules(point):
            incumbent = best.get(rule.source)
            if incumbent is None or rule.sort_key > incumbent.sort_key:
                best[rule.source] = rule
        edges = {switch: rule.target for switch, rule in best.items()}
        return ECGraph(interval=interval, edges=edges)

    def match_at(self, switch: object, point: int) -> Optional[Rule]:
        """Highest-priority rule matching ``point`` on ``switch``."""
        best: Optional[Rule] = None
        for rule in self.trie.covering_rules(point):
            if rule.source == switch and (best is None or
                                          rule.sort_key > best.sort_key):
                best = rule
        return best

    # -- the what-if query (Table 4's expensive path) --------------------------------

    def whatif_link_failure(self, link: Union[Link, Tuple[object, object]],
                            check_loops: bool = False) -> List[ECGraph]:
        """Forwarding graphs for every EC affected by failing ``link``.

        Veriflow has no network-wide flow index, so it must (paper
        §4.3.2) recompute the ECs of every rule installed on the failed
        link and construct each EC's forwarding graph from scratch —
        "at least a hundredfold more forwarding graphs compared to
        checking a rule insertion".
        """
        if not isinstance(link, Link):
            link = Link(*link)
        graphs: List[ECGraph] = []
        seen_ecs: Set[Tuple[int, int]] = set()
        for rid in sorted(self.rules_by_link.get(link, ())):
            rule = self.rules[rid]
            overlapping = self.trie.overlapping_interval(rule.lo, rule.hi)
            for ec in equivalence_classes(overlapping, rule.lo, rule.hi):
                if ec in seen_ecs:
                    continue
                seen_ecs.add(ec)
                graph = self._forwarding_graph(ec)
                # Only ECs whose traffic actually uses the failed link are
                # affected by its failure.
                if graph.edges.get(link.source) == link.target:
                    graphs.append(graph)
                    if check_loops:
                        graph.find_loop()
        return graphs

    def __repr__(self) -> str:
        return (f"VeriflowRI(rules={self.num_rules}, "
                f"switches={len(self.switches)})")
