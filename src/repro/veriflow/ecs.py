"""Packet equivalence classes over an affected header-space range.

Veriflow's affected ECs (paper §2.1) are the segments into which the
boundaries of all overlapping rules cut the updated rule's range — the
"interval segments (gray vertical dashed lines)" of Figure 1.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.core.rules import Rule


def equivalence_classes(rules: Iterable[Rule], lo: int, hi: int) -> List[Tuple[int, int]]:
    """Partition ``[lo : hi)`` by the boundaries of ``rules``.

    Returns the list of half-closed EC intervals in ascending order.
    Every point of one EC matches exactly the same subset of ``rules``,
    so one representative point per EC suffices to build its forwarding
    graph.
    """
    if lo >= hi:
        raise ValueError(f"empty range [{lo}:{hi})")
    points = {lo, hi}
    for rule in rules:
        if rule.lo > lo and rule.lo < hi:
            points.add(rule.lo)
        if rule.hi > lo and rule.hi < hi:
            points.add(rule.hi)
    ordered = sorted(points)
    return list(zip(ordered, ordered[1:]))
