"""A non-incremental data-plane verifier on atomic predicates.

Models Yang & Lam's workflow for a *static* snapshot: compute the minimal
atomic predicates from every rule predicate in the network, label each
link with the set of atomic-predicate indices it forwards (the
highest-priority rule per switch per predicate), then answer reachability
questions by intersecting index sets along paths.

Every rule change recomputes the partition — that recomputation cost,
versus Delta-net's incremental split of at most two atoms, is the point
of the A2 ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.apv.atomic import atomic_predicates
from repro.core.intervals import IntervalSet
from repro.core.rules import DROP, Link, Rule


class APVerifier:
    """Static atomic-predicates verifier over a rule snapshot."""

    def __init__(self, rules: Iterable[Rule], width: int = 32) -> None:
        self.width = width
        self.rules: List[Rule] = list(rules)
        self.partition: List[IntervalSet] = []
        self.label: Dict[Link, Set[int]] = {}
        self._recompute()

    @property
    def num_atomic_predicates(self) -> int:
        return len(self.partition)

    def _recompute(self) -> None:
        """Recompute the minimal partition and all edge labels (quadratic)."""
        predicates = [IntervalSet([(r.lo, r.hi)]) for r in self.rules]
        self.partition = atomic_predicates(predicates, self.width)
        by_switch: Dict[object, List[Rule]] = {}
        for rule in self.rules:
            by_switch.setdefault(rule.source, []).append(rule)
        self.label = {}
        for index, part in enumerate(self.partition):
            point = part.spans[0][0]
            for switch, switch_rules in by_switch.items():
                best: Optional[Rule] = None
                for rule in switch_rules:
                    if rule.matches(point) and (best is None or
                                                rule.sort_key > best.sort_key):
                        best = rule
                if best is not None:
                    self.label.setdefault(best.link, set()).add(index)

    # -- update = full recomputation (the quadratic baseline behaviour) -----------

    def insert_rule(self, rule: Rule) -> None:
        self.rules.append(rule)
        self._recompute()

    def remove_rule(self, rid: int) -> None:
        self.rules = [r for r in self.rules if r.rid != rid]
        self._recompute()

    # -- queries -------------------------------------------------------------------

    def predicate_of(self, indices: Iterable[int]) -> IntervalSet:
        """Union the atomic predicates back into a header-space set."""
        out = IntervalSet()
        for index in indices:
            out = out | self.partition[index]
        return out

    def reachable(self, src: object, dst: object) -> IntervalSet:
        """Packets that can flow from ``src`` to ``dst`` (set algebra)."""
        full = set(range(len(self.partition)))
        reached: Dict[object, Set[int]] = {src: full}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            mask = reached[node]
            for link, indices in self.label.items():
                if link.source != node or link.target == DROP:
                    continue
                passed = mask & indices
                fresh = passed - reached.get(link.target, set())
                if fresh:
                    reached.setdefault(link.target, set()).update(fresh)
                    frontier.append(link.target)
        return self.predicate_of(reached.get(dst, set()))

    def __repr__(self) -> str:
        return (f"APVerifier(rules={len(self.rules)}, "
                f"atomic_predicates={self.num_atomic_predicates})")
