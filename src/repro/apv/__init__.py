"""Atomic-predicates verifier (Yang & Lam, ICNP'13) — comparison baseline.

Delta-net's atoms are "inspired by Yang and Lam's atomic predicates
verifier" (§1); the key difference is that Yang & Lam compute the *unique
minimal* set of packet equivalence classes by quadratic partition
refinement, whereas Delta-net maintains a (possibly non-minimal) atom set
quasi-linearly.  This package implements the refinement over interval-set
predicates so the benchmark suite can demonstrate the asymptotic gap
(ablation A2 in DESIGN.md) and the minimality property itself.
"""

from repro.apv.atomic import atomic_predicates, predicate_to_atoms
from repro.apv.verifier import APVerifier

__all__ = ["atomic_predicates", "predicate_to_atoms", "APVerifier"]
