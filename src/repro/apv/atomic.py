"""Atomic predicates via quadratic partition refinement.

Given predicates P1..Pn (each an :class:`~repro.core.intervals.IntervalSet`
over a ``width``-bit header field), the atomic predicates are the coarsest
partition of the header space such that every Pi is a union of parts —
i.e. the *minimal* number of packet equivalence classes (cf. paper §5:
"Our algorithm, however, does not find the unique minimal number of
packet equivalence classes, cf. [55]").

The classic refinement: start from {universe}; for each predicate split
every class into (class ∩ P) and (class − P).  Each step is linear in the
current partition size, so the whole computation is O(n * |partition|) —
quadratic in the number of predicates in the worst case.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.intervals import IntervalSet


def atomic_predicates(predicates: Sequence[IntervalSet], width: int) -> List[IntervalSet]:
    """The minimal partition of the header space refining every predicate.

    The result is ordered deterministically (by first covered point) and
    always covers the whole universe; with no predicates it is just
    ``[universe]``.
    """
    partition: List[IntervalSet] = [IntervalSet.universe(width)]
    for predicate in predicates:
        refined: List[IntervalSet] = []
        for part in partition:
            inside = part & predicate
            outside = part - predicate
            if inside:
                refined.append(inside)
            if outside:
                refined.append(outside)
        partition = refined
    partition.sort(key=lambda p: p.spans[0])
    return partition


def predicate_to_atoms(predicate: IntervalSet,
                       partition: Sequence[IntervalSet]) -> Set[int]:
    """Indices of the atomic predicates whose union is ``predicate``.

    Raises ValueError if ``predicate`` is not expressible — which cannot
    happen when ``partition`` was computed from a predicate set containing
    it.
    """
    indices: Set[int] = set()
    remaining = predicate
    for index, part in enumerate(partition):
        overlap = part & predicate
        if not overlap:
            continue
        if overlap != part:
            raise ValueError("partition does not refine the predicate")
        indices.add(index)
        remaining = remaining - part
    if remaining:
        raise ValueError("predicate not covered by the partition")
    return indices


def is_partition(parts: Iterable[IntervalSet], width: int) -> bool:
    """True when ``parts`` are disjoint, non-empty, and cover the universe."""
    parts = list(parts)
    if any(not p for p in parts):
        return False
    union = IntervalSet()
    total = 0
    for part in parts:
        total += len(part)
        union = union | part
    return union == IntervalSet.universe(width) and total == len(union)
