"""Crash-safe pairing of one snapshot with its update journal.

A :class:`SessionStore` is a directory::

    <dir>/snapshot.bin   last checkpoint (atomically replaced)
    <dir>/journal.bin    ops applied since some checkpoint

``checkpoint()`` writes the snapshot to a temp file, fsyncs, renames it
over the old one, then rotates the journal — so at *every instant* the
directory holds a loadable snapshot plus a journal whose tail (records
with ``seq`` greater than the snapshot's sequence) reconstructs the
session.  A kill between the two steps merely leaves journal records
the snapshot already covers; recovery skips them by sequence number.

``recover()`` loads the snapshot, replays the journal tail *through the
session* (so property subscriptions re-observe in-flight violations
with the dedup state they had at checkpoint time), and reports what it
did.  This is the one recovery path shared by ``deltanet replay
--resume`` and the ``deltanet serve`` daemon.
"""

from __future__ import annotations

import os
from typing import Iterable, NamedTuple, Optional, Tuple

from repro.datasets.format import Op
from repro.faults.injector import fire
from repro.persist.journal import Journal
from repro.persist.snapshot import save_session, snapshot_info

SNAPSHOT_NAME = "snapshot.bin"
JOURNAL_NAME = "journal.bin"


class RecoveryInfo(NamedTuple):
    """What :meth:`SessionStore.recover` reconstructed."""

    snapshot_sequence: int   #: updates covered by the snapshot itself
    replayed: int            #: journal-tail ops replayed on top
    torn_tail: bool          #: a crash left a truncated final record
    sequence: int            #: the recovered session's update sequence
    #: Intact journal records stranded beyond mid-file corruption and
    #: therefore *not* replayed (0 for a clean file or plain torn tail)
    #: — surfaced so operators know replay stopped early, instead of
    #: the loss being silent.
    corrupt_records: int = 0


def _fsync_directory(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class SessionStore:
    """Checkpoint/journal/recover lifecycle for one session directory."""

    def __init__(self, directory: str) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._journal: Optional[Journal] = None

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.directory, SNAPSHOT_NAME)

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, JOURNAL_NAME)

    def exists(self) -> bool:
        """Does the directory hold a recoverable checkpoint?"""
        return os.path.exists(self.snapshot_path)

    # -- writing ---------------------------------------------------------------

    def checkpoint(self, session) -> int:
        """Atomically persist ``session``; returns its sequence number.

        The snapshot lands first (write temp, fsync, rename), then the
        journal is rotated to a fresh file based at the new sequence.
        Crashing between the steps is safe: stale journal records are
        filtered by sequence on recovery.
        """
        sequence = session.sequence
        tmp = self.snapshot_path + ".tmp"
        with open(tmp, "wb") as stream:
            save_session(session, stream)
            stream.flush()
            os.fsync(stream.fileno())
        # Fault points (no-ops unless a chaos injector is installed)
        # marking the crash windows whose recovery the chaos tests pin:
        # tmp written but not yet renamed, snapshot renamed but journal
        # not yet rotated, and fresh journal staged but not yet in place.
        fire("store.checkpoint.tmp-written", sequence=sequence)
        os.replace(tmp, self.snapshot_path)
        _fsync_directory(self.directory)
        fire("store.checkpoint.snapshot-renamed", sequence=sequence)
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        journal_tmp = self.journal_path + ".tmp"
        digest = getattr(session, "state_digest", lambda: None)()
        fresh = Journal.create(journal_tmp, sequence, digest=digest)
        fresh.sync()
        fresh.close()
        fire("store.checkpoint.journal-tmp", sequence=sequence)
        os.replace(journal_tmp, self.journal_path)
        _fsync_directory(self.directory)
        self._journal = Journal.open(self.journal_path)
        return sequence

    def _ensure_journal(self) -> Journal:
        if self._journal is None:
            if os.path.exists(self.journal_path):
                self._journal = Journal.open(self.journal_path)
            elif self.exists():
                base = snapshot_info(self.snapshot_path)["sequence"]
                self._journal = Journal.create(self.journal_path, base)
            else:
                raise RuntimeError(
                    "record() before the first checkpoint(); the journal "
                    "needs a snapshot to be relative to")
        return self._journal

    def record(self, op: Op, sequence: int) -> None:
        """Journal one applied op (its session sequence number)."""
        self._ensure_journal().append(op, sequence)

    def record_batch(self, ops, sequence: int) -> None:
        """Journal one aggregated batch (sequence after the batch)."""
        self._ensure_journal().append_batch(list(ops), sequence)

    def sync(self) -> None:
        """fsync pending journal records (power-loss durability)."""
        if self._journal is not None:
            self._journal.sync()

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __enter__(self) -> "SessionStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- recovery --------------------------------------------------------------

    def recover(self, *, properties: Optional[Iterable] = None,
                verify: bool = False,
                **backend_overrides) -> Tuple[object, RecoveryInfo]:
        """Rebuild the session: load the snapshot, replay the journal tail.

        Returns ``(session, RecoveryInfo)``.  The journal tail is applied
        through the session's checked update path, so the recovered
        session's property/violation state matches an uninterrupted run
        exactly.
        """
        from repro.persist.snapshot import load_session

        session = load_session(self.snapshot_path, properties=properties,
                               verify=verify, **backend_overrides)
        snapshot_sequence = session.sequence
        replayed = 0
        torn = False
        corrupt = 0
        if os.path.exists(self.journal_path):
            from repro.persist.journal import JournalCorruption, read_journal

            journal = read_journal(self.journal_path)
            torn = journal.torn
            corrupt = journal.corrupt_records
            if journal.base == snapshot_sequence:
                # The journal was rotated against this very snapshot, so
                # its header carries the checkpointed session's digest —
                # a mismatch means the pair was assembled from different
                # checkpoints (mixed backups, half-synced directories).
                expected = journal.header.get("digest")
                actual = getattr(session, "state_digest", lambda: None)()
                if (expected is not None and actual is not None
                        and expected != actual):
                    raise JournalCorruption(
                        f"journal {self.journal_path} was checkpointed "
                        f"against state digest {expected!r} but the loaded "
                        f"snapshot digests to {actual!r}: snapshot and "
                        f"journal are from different checkpoints")
            for seq, entry in journal.records:
                if seq <= snapshot_sequence:
                    continue
                if isinstance(entry, list):
                    # A journaled batch replays through the batched check
                    # path, so alert-invisible intermediate states stay
                    # invisible during recovery too.
                    session.apply_batch(
                        [op.rule for op in entry if op.is_insert],
                        [op.rid for op in entry if not op.is_insert])
                    replayed += len(entry)
                else:
                    session.apply(entry)
                    replayed += 1
                session.sequence = seq
        return session, RecoveryInfo(snapshot_sequence, replayed, torn,
                                     session.sequence, corrupt)

    def __repr__(self) -> str:
        return (f"SessionStore({self.directory!r}, "
                f"checkpoint={'yes' if self.exists() else 'no'})")
