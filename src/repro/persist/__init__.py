"""Persistence: versioned binary snapshots + an append-only journal.

Delta-net's atom representation makes *incremental* verification fast,
but a verifier that can only be built by replaying every rule operation
from rule zero is still a batch tool.  This package turns a
:class:`~repro.api.session.VerificationSession` into a restartable
service:

* :mod:`repro.persist.codec` — a small tagged binary value codec
  (varint framed, stdlib only) for the plain-data state dicts the
  verifiers expose,
* :mod:`repro.persist.snapshot` — versioned, section-framed, CRC-checked
  snapshot containers: ``save_session`` / ``load_session`` capture the
  full verifier state (atom table, run-length labels, rule store,
  per-shard fan-out) plus the session's property-subscription state,
* :mod:`repro.persist.journal` — the append-only update journal whose
  tail, replayed on top of a snapshot, reconstructs the exact session
  (torn tails from a crash are detected and truncated),
* :mod:`repro.persist.store` — a directory pairing the two:
  ``checkpoint()`` atomically rotates snapshot + journal,
  ``recover()`` rebuilds the session after a kill mid-stream.

The contract, proven by ``tests/persist``: ``load(save(session))``
followed by replaying the remaining trace yields *identical* check
results to the uninterrupted session, on every backend.
"""

from repro.persist.codec import CodecError, decode, decode_stream, encode, encode_stream
from repro.persist.journal import Journal, JournalCorruption, journal_records
from repro.persist.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    load_session,
    read_snapshot,
    save_session,
    snapshot_info,
    write_snapshot,
)
from repro.persist.store import RecoveryInfo, SessionStore

__all__ = [
    "CodecError",
    "Journal",
    "JournalCorruption",
    "RecoveryInfo",
    "SNAPSHOT_VERSION",
    "SessionStore",
    "SnapshotError",
    "decode",
    "decode_stream",
    "encode",
    "encode_stream",
    "journal_records",
    "load_session",
    "read_snapshot",
    "save_session",
    "snapshot_info",
    "write_snapshot",
]
