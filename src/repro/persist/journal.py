"""The append-only update journal: ``snapshot + journal tail = session``.

A journal file is a stream of CRC-framed records::

    record := payload-len (varint)  payload (codec value)  crc32 (u32 BE)

The first record is a header binding the journal to the snapshot it
extends (``base`` — the snapshot's update sequence number); every later
record is one rule operation tagged with its session sequence number.
Replaying, in order, the records with ``seq > snapshot.sequence`` on top
of the loaded snapshot reconstructs the exact pre-crash session.

Crash tolerance: a process killed mid-append leaves a *torn tail* — a
final record with a short payload or a CRC mismatch.  Readers detect it,
deliver every complete record before it, and report the valid byte
offset; :meth:`Journal.open` truncates the tear before appending, so one
crash never corrupts the next run's records.  Records are flushed to the
OS per append (surviving process kills); :meth:`Journal.sync` fsyncs for
full power-loss durability at checkpoint boundaries.

A bad frame *followed by intact records* is not a tear — it is mid-file
corruption (bit rot, a partial overwrite) that destroyed an op later
records depend on.  Readers scan ahead to make the distinction: recovery
still truncates to the valid prefix (replaying past a lost op would
silently build wrong state) but reports the stranded record count
(:attr:`JournalData.corrupt_records`) instead of discarding them without
a trace.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import (
    Any, BinaryIO, Iterator, List, NamedTuple, Optional, Tuple, Union,
)

from repro.core.rules import Rule
from repro.datasets.format import Op
from repro.persist.codec import (
    ByteReader, CodecError, decode, encode, write_uvarint,
)

JOURNAL_VERSION = 1

Pathish = Union[str, "os.PathLike[str]"]


class JournalCorruption(ValueError):
    """Raised when a journal is unreadable beyond torn-tail truncation
    (bad header, mid-file corruption)."""


def op_state(op: Op) -> tuple:
    """One operation as a codec-friendly tuple."""
    if op.is_insert:
        return ("+", op.rule.to_state())
    return ("-", op.rid)


def batch_state(ops: List[Op]) -> tuple:
    """An aggregated batch as one journal entry.

    Batches are journaled as a unit so recovery re-applies them through
    the *batched* check path — a batch whose intermediate states would
    alert (insert a looping rule, remove it again) must not alert during
    recovery either, exactly as it did not alert live.
    """
    return ("*", [op_state(op) for op in ops])


def op_from_state(state: tuple) -> Union[Op, List[Op]]:
    kind, payload = state
    if kind == "+":
        return Op.insert(Rule.from_state(payload))
    if kind == "-":
        return Op.remove(payload)
    if kind == "*":
        return [op_from_state(tuple(item)) for item in payload]
    raise JournalCorruption(f"unknown op kind {kind!r}")


def _append_record(stream: BinaryIO, value: Any) -> None:
    payload = encode(value)
    write_uvarint(stream, len(payload))
    stream.write(payload)
    stream.write(struct.pack(">I", zlib.crc32(payload)))


def _try_record(data: bytes, pos: int) -> Optional[int]:
    """The end offset of a complete, CRC-valid, decodable record at
    ``pos`` — or ``None`` if ``pos`` does not start one."""
    reader = ByteReader(data, pos)
    try:
        payload = reader.take(reader.read_uvarint())
        crc = struct.unpack(">I", reader.take(4))[0]
    except CodecError:
        return None
    if zlib.crc32(payload) != crc:
        return None
    try:
        decode(payload)
    except CodecError:
        return None
    return reader.pos


def _count_stranded(data: bytes, start: int) -> int:
    """Intact records parseable *after* a bad frame at ``start``.

    A torn tail (the crash-truncation case) leaves nothing valid beyond
    the tear; mid-file corruption strands whole intact records behind
    the damaged one.  Scanning byte-by-byte for the next frame whose
    CRC verifies distinguishes the two — a chance CRC32 match on
    non-record bytes is a 2**-32 event, negligible against real
    stranded frames.
    """
    stranded = 0
    pos = start + 1
    size = len(data)
    while pos < size:
        end = _try_record(data, pos)
        if end is None:
            pos += 1
        else:
            stranded += 1
            pos = end
    return stranded


def _scan_records(data: bytes) -> Tuple[List[Any], int, bool, int]:
    """(values, valid_offset, torn, stranded) — stops at the first bad
    frame, then scans ahead to classify it (see :func:`_count_stranded`).
    """
    values: List[Any] = []
    reader = ByteReader(data)
    size = len(data)
    while reader.pos < size:
        record_start = reader.pos
        try:
            payload = reader.take(reader.read_uvarint())
            crc = struct.unpack(">I", reader.take(4))[0]
        except CodecError:
            return (values, record_start, True,
                    _count_stranded(data, record_start))
        if zlib.crc32(payload) != crc:
            return (values, record_start, True,
                    _count_stranded(data, record_start))
        try:
            values.append(decode(payload))
        except CodecError:
            return (values, record_start, True,
                    _count_stranded(data, record_start))
    return values, reader.pos, False, 0


class JournalData(NamedTuple):
    """Everything a recovery needs to know about one journal file."""

    #: The snapshot sequence this journal extends.
    base: int
    #: ``(seq, entry)`` pairs — an entry is one :class:`Op` or a list
    #: (a journaled batch); ``seq`` is the session sequence *after*
    #: applying the entry.
    records: List[Tuple[int, Union[Op, List[Op]]]]
    #: Offset of the first bad byte (== file size when clean).
    valid: int
    #: Whether the file ends in a bad frame (tear or corruption).
    torn: bool
    #: Intact records stranded *beyond* the first bad frame.  Zero for a
    #: clean file or a genuine torn tail; positive means mid-file
    #: corruption destroyed a record that later, still-valid records
    #: depended on — recovery truncates to the valid prefix (replaying
    #: past a lost op would build wrong state) but must report it.
    corrupt_records: int
    #: The decoded header record (version, base, checkpoint digest).
    header: dict


def read_journal(path: Pathish) -> JournalData:
    """Read a journal file (see :class:`JournalData`).

    Raises :class:`JournalCorruption` when even the header record is
    unreadable.
    """
    with open(path, "rb") as stream:
        data = stream.read()
    values, valid, torn, stranded = _scan_records(data)
    if not values:
        raise JournalCorruption(f"journal {path} has no readable header")
    header = values[0]
    if (not isinstance(header, dict) or header.get("journal") is None
            or header.get("base") is None):
        raise JournalCorruption(f"journal {path} header is malformed")
    if header["journal"] > JOURNAL_VERSION:
        raise JournalCorruption(
            f"journal version {header['journal']} is newer than supported")
    records: List[Tuple[int, Union[Op, List[Op]]]] = []
    for value in values[1:]:
        seq, state = value
        records.append((seq, op_from_state(tuple(state))))
    return JournalData(header["base"], records, valid, torn, stranded,
                       header)


def journal_records(path: Pathish,
                    after_sequence: Optional[int] = None
                    ) -> Iterator[Tuple[int, Union[Op, List[Op]]]]:
    """The journal's entries with ``seq > after_sequence`` (default: base)."""
    data = read_journal(path)
    threshold = data.base if after_sequence is None else after_sequence
    for seq, entry in data.records:
        if seq > threshold:
            yield seq, entry


class Journal:
    """Writer handle over one journal file."""

    def __init__(self, path: Pathish, stream: BinaryIO,
                 base_sequence: int, last_sequence: int) -> None:
        self.path = os.fspath(path)
        self._stream = stream
        self.base_sequence = base_sequence
        self.last_sequence = last_sequence

    @classmethod
    def create(cls, path: Pathish, base_sequence: int,
               digest: Optional[str] = None) -> "Journal":
        """Start a fresh journal extending a snapshot at ``base_sequence``.

        ``digest`` is the checkpointed session's state digest
        (:mod:`repro.integrity`): recovery cross-checks it against the
        digest of the snapshot actually loaded, catching a snapshot and
        journal that were paired up wrongly (restored from different
        backups, half-synced, ...) even when both files are internally
        intact.
        """
        stream = open(path, "wb")
        header = {"journal": JOURNAL_VERSION, "base": base_sequence}
        if digest is not None:
            header["digest"] = digest
        _append_record(stream, header)
        stream.flush()
        return cls(path, stream, base_sequence, base_sequence)

    @classmethod
    def open(cls, path: Pathish) -> "Journal":
        """Reopen for appending; truncates a torn tail first."""
        data = read_journal(path)
        if data.torn:
            with open(path, "rb+") as stream:
                stream.truncate(data.valid)
        stream = open(path, "ab")
        last = data.records[-1][0] if data.records else data.base
        return cls(path, stream, data.base, last)

    def append(self, op: Op, sequence: int) -> None:
        """Record ``op`` as update number ``sequence``."""
        if sequence <= self.last_sequence:
            raise ValueError(
                f"sequence {sequence} not after {self.last_sequence}")
        _append_record(self._stream, (sequence, op_state(op)))
        self._stream.flush()
        self.last_sequence = sequence

    def append_batch(self, ops: List[Op], sequence: int) -> None:
        """Record an aggregated batch ending at ``sequence``."""
        if sequence <= self.last_sequence:
            raise ValueError(
                f"sequence {sequence} not after {self.last_sequence}")
        _append_record(self._stream, (sequence, batch_state(ops)))
        self._stream.flush()
        self.last_sequence = sequence

    def sync(self) -> None:
        """fsync appended records (power-loss durability)."""
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.flush()
            self._stream.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
