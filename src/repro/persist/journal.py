"""The append-only update journal: ``snapshot + journal tail = session``.

A journal file is a stream of CRC-framed records::

    record := payload-len (varint)  payload (codec value)  crc32 (u32 BE)

The first record is a header binding the journal to the snapshot it
extends (``base`` — the snapshot's update sequence number); every later
record is one rule operation tagged with its session sequence number.
Replaying, in order, the records with ``seq > snapshot.sequence`` on top
of the loaded snapshot reconstructs the exact pre-crash session.

Crash tolerance: a process killed mid-append leaves a *torn tail* — a
final record with a short payload or a CRC mismatch.  Readers detect it,
deliver every complete record before it, and report the valid byte
offset; :meth:`Journal.open` truncates the tear before appending, so one
crash never corrupts the next run's records.  Records are flushed to the
OS per append (surviving process kills); :meth:`Journal.sync` fsyncs for
full power-loss durability at checkpoint boundaries.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any, BinaryIO, Iterator, List, Optional, Tuple, Union

from repro.core.rules import Rule
from repro.datasets.format import Op
from repro.persist.codec import (
    ByteReader, CodecError, decode, encode, write_uvarint,
)

JOURNAL_VERSION = 1

Pathish = Union[str, "os.PathLike[str]"]


class JournalCorruption(ValueError):
    """Raised when a journal is unreadable beyond torn-tail truncation
    (bad header, mid-file corruption)."""


def op_state(op: Op) -> tuple:
    """One operation as a codec-friendly tuple."""
    if op.is_insert:
        return ("+", op.rule.to_state())
    return ("-", op.rid)


def batch_state(ops: List[Op]) -> tuple:
    """An aggregated batch as one journal entry.

    Batches are journaled as a unit so recovery re-applies them through
    the *batched* check path — a batch whose intermediate states would
    alert (insert a looping rule, remove it again) must not alert during
    recovery either, exactly as it did not alert live.
    """
    return ("*", [op_state(op) for op in ops])


def op_from_state(state: tuple) -> Union[Op, List[Op]]:
    kind, payload = state
    if kind == "+":
        return Op.insert(Rule.from_state(payload))
    if kind == "-":
        return Op.remove(payload)
    if kind == "*":
        return [op_from_state(tuple(item)) for item in payload]
    raise JournalCorruption(f"unknown op kind {kind!r}")


def _append_record(stream: BinaryIO, value: Any) -> None:
    payload = encode(value)
    write_uvarint(stream, len(payload))
    stream.write(payload)
    stream.write(struct.pack(">I", zlib.crc32(payload)))


def _scan_records(data: bytes) -> Tuple[List[Any], int, bool]:
    """(values, valid_offset, torn) — stops cleanly at a torn tail."""
    values: List[Any] = []
    reader = ByteReader(data)
    size = len(data)
    while reader.pos < size:
        record_start = reader.pos
        try:
            payload = reader.take(reader.read_uvarint())
            crc = struct.unpack(">I", reader.take(4))[0]
        except CodecError:
            return values, record_start, True
        if zlib.crc32(payload) != crc:
            # A mid-file CRC failure cannot be distinguished from a torn
            # tail by position alone; treat it as the tail (everything
            # after it is unreachable anyway).
            return values, record_start, True
        try:
            values.append(decode(payload))
        except CodecError:
            return values, record_start, True
    return values, reader.pos, False


def read_journal(path: Pathish
                 ) -> Tuple[int, List[Tuple[int, Union[Op, List[Op]]]],
                            int, bool]:
    """Read a journal: ``(base_sequence, [(seq, entry)...], valid_bytes,
    torn)`` — an entry is one :class:`Op` or a list (a journaled batch);
    ``seq`` is the session sequence *after* applying the entry.

    ``valid_bytes`` is the offset of the first torn byte (== file size
    when the journal is clean).  Raises :class:`JournalCorruption` when
    even the header record is unreadable.
    """
    with open(path, "rb") as stream:
        data = stream.read()
    values, valid, torn = _scan_records(data)
    if not values:
        raise JournalCorruption(f"journal {path} has no readable header")
    header = values[0]
    if (not isinstance(header, dict) or header.get("journal") is None
            or header.get("base") is None):
        raise JournalCorruption(f"journal {path} header is malformed")
    if header["journal"] > JOURNAL_VERSION:
        raise JournalCorruption(
            f"journal version {header['journal']} is newer than supported")
    records: List[Tuple[int, Union[Op, List[Op]]]] = []
    for value in values[1:]:
        seq, state = value
        records.append((seq, op_from_state(tuple(state))))
    return header["base"], records, valid, torn


def journal_records(path: Pathish,
                    after_sequence: Optional[int] = None
                    ) -> Iterator[Tuple[int, Union[Op, List[Op]]]]:
    """The journal's entries with ``seq > after_sequence`` (default: base)."""
    base, records, _valid, _torn = read_journal(path)
    threshold = base if after_sequence is None else after_sequence
    for seq, entry in records:
        if seq > threshold:
            yield seq, entry


class Journal:
    """Writer handle over one journal file."""

    def __init__(self, path: Pathish, stream: BinaryIO,
                 base_sequence: int, last_sequence: int) -> None:
        self.path = os.fspath(path)
        self._stream = stream
        self.base_sequence = base_sequence
        self.last_sequence = last_sequence

    @classmethod
    def create(cls, path: Pathish, base_sequence: int) -> "Journal":
        """Start a fresh journal extending a snapshot at ``base_sequence``."""
        stream = open(path, "wb")
        _append_record(stream, {"journal": JOURNAL_VERSION,
                                "base": base_sequence})
        stream.flush()
        return cls(path, stream, base_sequence, base_sequence)

    @classmethod
    def open(cls, path: Pathish) -> "Journal":
        """Reopen for appending; truncates a torn tail first."""
        base, records, valid, torn = read_journal(path)
        if torn:
            with open(path, "rb+") as stream:
                stream.truncate(valid)
        stream = open(path, "ab")
        last = records[-1][0] if records else base
        return cls(path, stream, base, last)

    def append(self, op: Op, sequence: int) -> None:
        """Record ``op`` as update number ``sequence``."""
        if sequence <= self.last_sequence:
            raise ValueError(
                f"sequence {sequence} not after {self.last_sequence}")
        _append_record(self._stream, (sequence, op_state(op)))
        self._stream.flush()
        self.last_sequence = sequence

    def append_batch(self, ops: List[Op], sequence: int) -> None:
        """Record an aggregated batch ending at ``sequence``."""
        if sequence <= self.last_sequence:
            raise ValueError(
                f"sequence {sequence} not after {self.last_sequence}")
        _append_record(self._stream, (sequence, batch_state(ops)))
        self._stream.flush()
        self.last_sequence = sequence

    def sync(self) -> None:
        """fsync appended records (power-loss durability)."""
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.flush()
            self._stream.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
