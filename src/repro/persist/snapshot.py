"""Versioned, section-framed binary snapshots of verifier sessions.

Container layout (all integers varint unless noted)::

    MAGIC "DNETSNAP"  (8 bytes)
    version           (u16 big-endian)
    section*          name-len name-bytes payload-len payload crc32(u32 BE)
    end               name-len == 0

Sections are streamed — a reader never holds more than one section's
payload — and individually CRC-checked, so a corrupted file fails loudly
instead of reconstructing a subtly wrong verifier.  Since version 2 the
CRC covers the section *name* as well as the payload: with a
payload-only CRC, one flipped bit in a name could turn a known section
into a valid unknown one ("qroperties"), which readers would then
silently skip — a session restored without its subscriptions answers
from subtly wrong state, exactly what the CRC exists to prevent.  The
corruption fuzzer (``deltanet fuzz --corrupt``) found this gap.  Payloads are
:mod:`repro.persist.codec` values; no pickle is involved anywhere, so
loading a snapshot can never execute code.

A *session* snapshot has sections:

* ``meta`` — format bookkeeping: backend registry name, header width,
  the session's update ``sequence`` (the journal replay cursor), and
  the backend's constructor options,
* ``backend`` — the backend's ``snapshot_state()`` (for Delta-net: the
  atom table, run-length labels, rule store and GC refcounts; sharded
  backends nest one such state per shard),
* ``properties`` — each watched property's spec, internal state and
  delivered-violation signatures, so restored subscriptions neither
  re-alert old violations nor miss re-introduced ones,
* ``violations`` — the session's delivery log, so
  ``session.violations()`` is continuous across a restart.
* ``integrity`` — the saving session's state digest
  (:mod:`repro.integrity`); ``load_session`` re-derives the restored
  backend's digest and rejects a mismatch, closing the gap the
  per-section CRCs cannot: a snapshot that decodes fine but rebuilds
  different verifier state.

Compatibility: the version is bumped on breaking layout changes and
readers reject newer versions; unknown *sections* are ignored, so older
readers survive additive changes.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from typing import Any, BinaryIO, Dict, Iterable, List, Optional, Tuple, Union

from repro.persist.codec import (
    CodecError, decode, encode, read_uvarint, write_uvarint,
)

MAGIC = b"DNETSNAP"
#: Bumped on breaking changes to the container or section layouts.
#: v2: the section CRC covers the name bytes, not just the payload.
SNAPSHOT_VERSION = 2

Pathish = Union[str, "os.PathLike[str]"]


class SnapshotError(ValueError):
    """Raised on bad magic, unsupported versions, or CRC mismatches."""


_write_uvarint = write_uvarint


def _read_uvarint(stream: BinaryIO) -> int:
    try:
        return read_uvarint(stream)
    except CodecError:
        raise SnapshotError("truncated snapshot") from None


def write_snapshot(stream: BinaryIO,
                   sections: Iterable[Tuple[str, Any]]) -> None:
    """Write a snapshot container with the given ``(name, value)`` sections."""
    stream.write(MAGIC)
    stream.write(struct.pack(">H", SNAPSHOT_VERSION))
    for name, value in sections:
        raw_name = name.encode("utf-8")
        if not raw_name:
            raise SnapshotError("section names must be non-empty")
        payload = encode(value)
        _write_uvarint(stream, len(raw_name))
        stream.write(raw_name)
        _write_uvarint(stream, len(payload))
        stream.write(payload)
        stream.write(struct.pack(">I", zlib.crc32(payload, zlib.crc32(raw_name))))
    _write_uvarint(stream, 0)


def iter_snapshot(stream: BinaryIO) -> Iterable[Tuple[str, Any]]:
    """Stream ``(name, value)`` sections, verifying magic/version/CRCs."""
    header = stream.read(len(MAGIC) + 2)
    if len(header) != len(MAGIC) + 2 or not header.startswith(MAGIC):
        raise SnapshotError("not a DNETSNAP snapshot")
    version = struct.unpack(">H", header[len(MAGIC):])[0]
    if version > SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version} is newer than supported "
            f"({SNAPSHOT_VERSION}); upgrade to read it")
    while True:
        name_len = _read_uvarint(stream)
        if name_len == 0:
            return
        name = stream.read(name_len)
        if len(name) != name_len:
            raise SnapshotError("truncated section name")
        payload_len = _read_uvarint(stream)
        payload = stream.read(payload_len)
        crc_raw = stream.read(4)
        if len(payload) != payload_len or len(crc_raw) != 4:
            raise SnapshotError("truncated section payload")
        # v1 files carry a payload-only CRC; since v2 the name is
        # covered too, so a flipped name byte fails here instead of
        # demoting a known section to a silently-skipped unknown one.
        seed = zlib.crc32(name) if version >= 2 else 0
        if zlib.crc32(payload, seed) != struct.unpack(">I", crc_raw)[0]:
            raise SnapshotError(f"CRC mismatch in section {name!r}")
        try:
            decoded_name = name.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SnapshotError(f"malformed section name {name!r}: "
                                f"{exc}") from exc
        try:
            yield decoded_name, decode(payload)
        except CodecError as exc:
            raise SnapshotError(f"malformed section {name!r}: {exc}") from exc


def read_snapshot(source: Union[Pathish, BinaryIO]) -> Dict[str, Any]:
    """All sections of a snapshot, by name."""
    if hasattr(source, "read"):
        return dict(iter_snapshot(source))
    with open(source, "rb") as stream:
        return dict(iter_snapshot(stream))


def snapshot_info(source: Union[Pathish, BinaryIO]) -> Dict[str, Any]:
    """The ``meta`` section alone — cheap: stops reading after it."""
    def first_meta(stream: BinaryIO) -> Dict[str, Any]:
        for name, value in iter_snapshot(stream):
            if name == "meta":
                return value
        raise SnapshotError("snapshot has no meta section")

    if hasattr(source, "read"):
        return first_meta(source)
    with open(source, "rb") as stream:
        return first_meta(stream)


# -- session-level save / load -------------------------------------------------


def _sorted_signatures(signatures: Iterable[Tuple[object, ...]]) -> List[tuple]:
    """Deterministic order for dedup-signature sets (byte-stable saves)."""
    return sorted((tuple(sig) for sig in signatures), key=encode)


def session_sections(session) -> List[Tuple[str, Any]]:
    """The ``(name, value)`` sections capturing ``session`` entirely."""
    from repro.api.properties import property_spec, property_state

    backend = session.backend
    state = backend.snapshot_state()
    meta = {
        "backend": backend.name,
        "width": session.width,
        "sequence": session.sequence,
        "options": state.pop("options", {}),
    }
    properties = []
    for prop in session.properties:
        properties.append({
            "name": getattr(prop, "name", type(prop).__name__),
            "spec": property_spec(prop),
            "state": property_state(prop),
            "seen": _sorted_signatures(session._seen[id(prop)]),
        })
    violations = [(v.property_name, tuple(v.signature), v.detail, v.data)
                  for v in session.violations()]
    sections = [("meta", meta), ("backend", state),
                ("properties", properties), ("violations", violations)]
    digest = getattr(session, "state_digest", lambda: None)()
    if digest is not None:
        # The integrity trailer: load_session re-derives the restored
        # backend's digest and refuses a snapshot whose state does not
        # hash to what the saving session held.  Additive — readers
        # ignore unknown sections.
        sections.append(("integrity", {"digest": digest}))
    return sections


def save_session(session, target: Union[Pathish, BinaryIO]) -> None:
    """Serialize ``session`` (backend + subscriptions) to ``target``.

    Writing to a path is **not** atomic by itself — use
    :class:`repro.persist.store.SessionStore` for crash-safe checkpoint
    rotation.
    """
    sections = session_sections(session)
    if hasattr(target, "write"):
        write_snapshot(target, sections)
        return
    with open(target, "wb") as stream:
        write_snapshot(stream, sections)


def load_session(source: Union[Pathish, BinaryIO], *,
                 properties: Optional[Iterable] = None,
                 verify: bool = False,
                 **backend_overrides):
    """Reconstruct a :class:`~repro.api.session.VerificationSession`.

    ``properties`` may supply already-constructed property instances (in
    watch order) for snapshots whose properties cannot be rebuilt from
    specs (custom classes); built-in properties are reconstructed
    automatically.  ``backend_overrides`` adjust the backend's saved
    constructor options (e.g. ``force_inline=True`` to restore a
    parallel snapshot without spawning workers).  With ``verify=True``
    the restored backend's invariants are checked before returning.
    """
    from repro.api.properties import Violation, property_from_spec
    from repro.api.session import VerificationSession
    from repro.api.registry import create_backend

    sections = read_snapshot(source)
    try:
        meta = sections["meta"]
        backend_state = sections["backend"]
    except KeyError as exc:
        raise SnapshotError(f"snapshot is missing section {exc}") from exc
    options = dict(meta.get("options", {}))
    options.update(backend_overrides)
    backend = create_backend(meta["backend"], width=meta["width"], **options)
    backend.restore_state(backend_state)
    integrity = sections.get("integrity")
    if integrity is not None and integrity.get("digest") is not None:
        restored = getattr(backend, "state_digest", lambda: None)()
        if restored is not None and restored != integrity["digest"]:
            raise SnapshotError(
                "state digest mismatch: snapshot trailer recorded "
                f"{integrity['digest']!r} but the restored backend digests "
                f"to {restored!r} — refusing a silently diverged restore")
    if verify:
        backend.check_invariants()

    session = VerificationSession(backend)
    session.sequence = meta.get("sequence", 0)

    supplied = list(properties) if properties is not None else None
    saved_props = sections.get("properties", [])
    if supplied is not None and len(supplied) != len(saved_props):
        raise SnapshotError(
            f"snapshot has {len(saved_props)} properties, "
            f"{len(supplied)} supplied")
    for index, entry in enumerate(saved_props):
        if supplied is not None:
            prop = supplied[index]
        else:
            prop = property_from_spec(entry["name"], entry.get("spec"))
            if prop is None:
                raise SnapshotError(
                    f"property {entry['name']!r} has no saved spec; pass "
                    f"constructed instances via load_session(properties=...)")
        session.watch(prop)
        state = entry.get("state")
        if state is not None and hasattr(prop, "load_state_dict"):
            prop.load_state_dict(state)
        session._seen[id(prop)] = {tuple(sig) for sig in entry.get("seen", ())}
    for name, signature, detail, data in sections.get("violations", ()):
        session._violation_log.append(
            Violation(name, tuple(signature), detail, data=data))
    return session


def dumps_session(session) -> bytes:
    """The snapshot bytes of ``session`` (tests, byte-equality checks)."""
    buffer = io.BytesIO()
    save_session(session, buffer)
    return buffer.getvalue()
