"""A tagged binary codec for the verifiers' plain-data state.

Snapshots and journal records are built from a deliberately small value
vocabulary — ``None``, bools, ints, floats, strings, bytes, tuples,
lists, dicts, sets and frozensets — which is exactly what the
``state_dict()`` surfaces of the native verifiers emit.  The codec is:

* **deterministic** — the same value always encodes to the same bytes
  (dict entries keep insertion order; sets are sorted by their encoded
  form), so snapshot files can be compared byte-for-byte in tests,
* **streamed** — every value is length-delimited (varints), so readers
  never buffer more than one value and writers append directly to a
  file object,
* **self-describing** — a one-byte tag per value; unknown tags raise
  :class:`CodecError` instead of misreading newer formats,
* **stdlib only** — no pickle (a snapshot must never execute code on
  load) and no third-party serializers.

Ints use a zigzag varint of arbitrary precision, so 128-bit header
space boundaries (width > 64) encode fine.
"""

from __future__ import annotations

import struct
from typing import Any, BinaryIO, Iterator, List, Tuple

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_TUPLE = 0x07
_TAG_LIST = 0x08
_TAG_DICT = 0x09
_TAG_SET = 0x0A
_TAG_FROZENSET = 0x0B


class CodecError(ValueError):
    """Raised on unencodable values or malformed/truncated bytes."""


def _write_uvarint(out: List[bytes], value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


def _encode_into(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(bytes((_TAG_NONE,)))
    elif value is True:
        out.append(bytes((_TAG_TRUE,)))
    elif value is False:
        out.append(bytes((_TAG_FALSE,)))
    elif type(value) is int:
        out.append(bytes((_TAG_INT,)))
        _write_uvarint(out, (-value << 1) | 1 if value < 0 else value << 1)
    elif type(value) is float:
        out.append(bytes((_TAG_FLOAT,)))
        out.append(struct.pack(">d", value))
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(bytes((_TAG_STR,)))
        _write_uvarint(out, len(raw))
        out.append(raw)
    elif type(value) is bytes:
        out.append(bytes((_TAG_BYTES,)))
        _write_uvarint(out, len(value))
        out.append(value)
    elif isinstance(value, tuple):
        # isinstance, not exact type: Link (and other NamedTuples) ride
        # through as plain tuples — the state_dict layer re-tags them.
        out.append(bytes((_TAG_TUPLE,)))
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(item, out)
    elif type(value) is list:
        out.append(bytes((_TAG_LIST,)))
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(item, out)
    elif type(value) is dict:
        out.append(bytes((_TAG_DICT,)))
        _write_uvarint(out, len(value))
        for key, item in value.items():
            _encode_into(key, out)
            _encode_into(item, out)
    elif type(value) in (set, frozenset):
        tag = _TAG_SET if type(value) is set else _TAG_FROZENSET
        encoded = sorted(encode(item) for item in value)
        out.append(bytes((tag,)))
        _write_uvarint(out, len(encoded))
        out.extend(encoded)
    else:
        raise CodecError(f"cannot encode {type(value).__name__}: {value!r}")


def encode(value: Any) -> bytes:
    """Encode ``value`` to bytes; deterministic for equal values."""
    out: List[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


class ByteReader:
    """Cursor over a bytes buffer with truncation-checked reads.

    The one length/varint parser shared by every framing layer
    (snapshot sections, journal records) so corruption-detection
    behaviour cannot drift between them.
    """

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise CodecError("truncated value")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def read_uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            if self.pos >= len(self.data):
                raise CodecError("truncated varint")
            byte = self.data[self.pos]
            self.pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7


_Reader = ByteReader


def write_uvarint(stream: BinaryIO, value: int) -> int:
    """Append one unsigned varint to ``stream``; returns bytes written."""
    out: List[bytes] = []
    _write_uvarint(out, value)
    raw = b"".join(out)
    stream.write(raw)
    return len(raw)


def read_uvarint(stream: BinaryIO) -> int:
    """Read one unsigned varint; :class:`CodecError` on EOF/truncation."""
    result = 0
    shift = 0
    while True:
        byte = stream.read(1)
        if not byte:
            raise CodecError("truncated varint")
        result |= (byte[0] & 0x7F) << shift
        if not byte[0] & 0x80:
            return result
        shift += 7


def _decode_from(reader: _Reader) -> Any:
    tag = reader.take(1)[0]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        raw = reader.read_uvarint()
        return -(raw >> 1) if raw & 1 else raw >> 1
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", reader.take(8))[0]
    if tag == _TAG_STR:
        return reader.take(reader.read_uvarint()).decode("utf-8")
    if tag == _TAG_BYTES:
        return reader.take(reader.read_uvarint())
    if tag == _TAG_TUPLE:
        return tuple(_decode_from(reader)
                     for _ in range(reader.read_uvarint()))
    if tag == _TAG_LIST:
        return [_decode_from(reader) for _ in range(reader.read_uvarint())]
    if tag == _TAG_DICT:
        count = reader.read_uvarint()
        result = {}
        for _ in range(count):
            key = _decode_from(reader)
            result[key] = _decode_from(reader)
        return result
    if tag == _TAG_SET:
        return {_decode_from(reader) for _ in range(reader.read_uvarint())}
    if tag == _TAG_FROZENSET:
        return frozenset(_decode_from(reader)
                         for _ in range(reader.read_uvarint()))
    raise CodecError(f"unknown tag 0x{tag:02x} (newer snapshot format?)")


def decode(data: bytes) -> Any:
    """Decode one value; trailing bytes are an error."""
    reader = _Reader(data)
    value = _decode_from(reader)
    if reader.pos != len(data):
        raise CodecError(f"{len(data) - reader.pos} trailing bytes")
    return value


def encode_stream(stream: BinaryIO, value: Any) -> int:
    """Append one length-prefixed value to ``stream``; returns bytes written."""
    payload = encode(value)
    written = write_uvarint(stream, len(payload))
    stream.write(payload)
    return written + len(payload)


def _read_uvarint_io(stream: BinaryIO) -> Tuple[int, bool]:
    """(value, at_eof_before_any_byte) — distinguishes clean EOF."""
    result = 0
    shift = 0
    first = True
    while True:
        byte = stream.read(1)
        if not byte:
            if first:
                return 0, True
            raise CodecError("truncated length prefix")
        first = False
        result |= (byte[0] & 0x7F) << shift
        if not byte[0] & 0x80:
            return result, False
        shift += 7


def decode_stream(stream: BinaryIO) -> Iterator[Any]:
    """Yield length-prefixed values until clean EOF.

    A truncated final value raises :class:`CodecError`; callers that
    must tolerate torn tails (the journal) catch it and truncate.
    """
    while True:
        length, eof = _read_uvarint_io(stream)
        if eof:
            return
        payload = stream.read(length)
        if len(payload) != length:
            raise CodecError("truncated stream value")
        yield decode(payload)
