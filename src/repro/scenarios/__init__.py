"""`repro.scenarios` — declarative, seed-reproducible network lifecycles.

A scenario composes a topology generator, a routing behavior and a timed
event script into a named update trace with expected-property
annotations; the differential runner replays traces through the
registered backends and the pre-index sweep oracle and diffs the alert
streams.  See ``docs/scenarios.md`` for the family catalogue and
``deltanet scenario run``/``deltanet fuzz`` for the CLI.
"""

from repro.scenarios.engine import (
    build_scenario, family_info, random_scenario, scenario_families,
)
from repro.scenarios.families import FAMILIES, Family
from repro.scenarios.oracle import Signature, SweepOracle
from repro.scenarios.runner import (
    BackendRun, Divergence, ScenarioReport, diff_streams, format_signature,
    replay_signatures, run_scenario,
)
from repro.scenarios.spec import (
    PropertySpec, Scenario, ScenarioError, ops_from_state, ops_to_state,
    repair_trace, validate_trace,
)

__all__ = [
    "FAMILIES",
    "BackendRun",
    "Divergence",
    "Family",
    "PropertySpec",
    "Scenario",
    "ScenarioError",
    "ScenarioReport",
    "Signature",
    "SweepOracle",
    "build_scenario",
    "diff_streams",
    "family_info",
    "format_signature",
    "ops_from_state",
    "ops_to_state",
    "random_scenario",
    "repair_trace",
    "replay_signatures",
    "run_scenario",
    "scenario_families",
    "validate_trace",
]
