"""The sweep oracle: ground-truth violation streams for differential runs.

The oracle maintains a plain :class:`~repro.core.deltanet.DeltaNet` and,
after **every** operation, recomputes each watched property's *complete*
current violation set with the pre-index sweep checkers
(:mod:`repro.checkers.sweep` — the seed's rebuild-per-check
implementations, deliberately independent of the persistent
forwarding-index fast paths the production backends use).  Delivery
semantics mirror :class:`repro.api.VerificationSession` exactly: a
violation signature is delivered when it enters the current set and
re-armed when it leaves, so the oracle's per-op stream is what any
correct backend's session must deliver.

(For loops the session tracks cycle *liveness* incrementally instead of
re-sweeping; for functional forwarding that is equivalent to the set
difference of full sweeps, which is what the oracle computes — precisely
the equivalence the differential fuzzer is there to enforce.)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.checkers.sweep import (
    sweep_check_isolation, sweep_check_waypoint, sweep_find_blackholes,
    sweep_find_forwarding_loops, sweep_reachable_atoms,
)
from repro.core.deltanet import DeltaNet
from repro.datasets.format import Op
from repro.scenarios.spec import PropertySpec, ScenarioError

Signature = Tuple[object, ...]


class SweepOracle:
    """Replays a trace, emitting per-op newly-delivered signatures."""

    def __init__(self, property_specs: Sequence[PropertySpec],
                 width: int = 32) -> None:
        self.deltanet = DeltaNet(width=width)
        self._specs: List[Tuple[str, Dict[str, object]]] = [
            (spec.name, dict(spec.options)) for spec in property_specs]
        for name, _options in self._specs:
            if name not in _CHECKS:
                raise ScenarioError(
                    f"the sweep oracle has no checker for property "
                    f"{name!r} (has: {', '.join(sorted(_CHECKS))})")
        self._previous: List[Set[Signature]] = [set() for _ in self._specs]

    def apply(self, op: Op) -> FrozenSet[Signature]:
        """Apply one op; return the signatures a session must deliver."""
        if op.is_insert:
            self.deltanet.insert_rule(op.rule)
        else:
            self.deltanet.remove_rule(op.rid)
        delivered: Set[Signature] = set()
        for index, (name, options) in enumerate(self._specs):
            current = _CHECKS[name](self.deltanet, options)
            delivered |= current - self._previous[index]
            self._previous[index] = current
        return frozenset(delivered)

    def stream(self, ops: Iterable[Op]) -> List[FrozenSet[Signature]]:
        return [self.apply(op) for op in ops]


# -- per-property current-violation sweeps -------------------------------------


def _current_loops(deltanet: DeltaNet, _options: Dict) -> Set[Signature]:
    return {("loop", loop.cycle)
            for loop in sweep_find_forwarding_loops(deltanet)}


def _current_blackholes(deltanet: DeltaNet, options: Dict) -> Set[Signature]:
    holes = sweep_find_blackholes(
        deltanet, expected_sinks=options.get("expected_sinks", ()))
    return {("blackhole", node) for node in holes}


def _current_reachability(deltanet: DeltaNet,
                          options: Dict) -> Set[Signature]:
    src, dst = options["src"], options["dst"]
    expect = options.get("expect_reachable", True)
    reachable = bool(sweep_reachable_atoms(deltanet, src, dst))
    if reachable == expect:
        return set()
    return {("reachability", src, dst, expect)}


def _current_waypoint(deltanet: DeltaNet, options: Dict) -> Set[Signature]:
    src, dst = options["src"], options["dst"]
    waypoint = options["waypoint"]
    leaked = sweep_check_waypoint(deltanet, src, dst, waypoint)
    if not leaked:
        return set()
    return {("waypoint", src, dst, waypoint)}


def _current_isolation(deltanet: DeltaNet, options: Dict) -> Set[Signature]:
    offenders = sweep_check_isolation(deltanet, options["slice_a"],
                                      options["slice_b"])
    return {("isolation", link) for link in offenders}


_CHECKS = {
    "loops": _current_loops,
    "blackholes": _current_blackholes,
    "reachability": _current_reachability,
    "waypoint": _current_waypoint,
    "isolation": _current_isolation,
}
