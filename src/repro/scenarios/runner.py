"""Differential scenario execution: backends vs. the sweep oracle.

``run_scenario`` replays one trace through any number of registered
backends (one fresh :class:`~repro.api.VerificationSession` each, with
its own property instances) and through the
:class:`~repro.scenarios.oracle.SweepOracle`, then diffs the per-update
violation streams.  The diff is the whole point: Delta-net's atoms, the
sharded/parallel fan-outs, Veriflow's ECs and the rest must deliver the
*identical* alert stream on the identical trace, op by op.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from repro.datasets.format import Op
from repro.scenarios.oracle import Signature, SweepOracle
from repro.scenarios.spec import Scenario


def format_signature(signature: Signature) -> str:
    """One human line per violation signature (diff output)."""
    kind, args = signature[0], signature[1:]
    if kind == "loop":
        cycle = args[0]
        return "loop: " + " -> ".join(map(str, cycle)) + f" -> {cycle[0]}"
    if kind == "blackhole":
        return f"blackhole at {args[0]}"
    if kind == "reachability":
        src, dst, expect = args
        return (f"reachability: {dst} {'un' if expect else ''}reachable "
                f"from {src}")
    if kind == "waypoint":
        src, dst, waypoint = args
        return f"waypoint: {src} -> {dst} bypasses {waypoint}"
    if kind == "isolation":
        return f"isolation: link {args[0]} carries both slices"
    return f"{kind}: {args!r}"


@dataclass
class Divergence:
    """First op where one backend's alert stream leaves the oracle's."""

    backend: str
    op_index: int
    op: Op
    missing: FrozenSet[Signature]     # oracle delivered, backend did not
    unexpected: FrozenSet[Signature]  # backend delivered, oracle did not

    def describe(self) -> str:
        lines = [f"backend {self.backend!r} diverges from the sweep "
                 f"oracle at op {self.op_index} ({self.op.to_line()}):"]
        for label, signatures in (("missing (oracle delivered, backend "
                                   "did not)", self.missing),
                                  ("unexpected (backend delivered, oracle "
                                   "did not)", self.unexpected)):
            if signatures:
                lines.append(f"  {label}:")
                lines.extend(f"    {format_signature(sig)}"
                             for sig in sorted(signatures, key=repr))
        return "\n".join(lines)


@dataclass
class BackendRun:
    """One backend's replay of the trace."""

    backend: str
    delivered: List[FrozenSet[Signature]] = field(default_factory=list)
    seconds: float = 0.0
    error: Optional[str] = None
    #: Chaos-mode annotations (plan, injected/skipped faults, recovery
    #: count) when the replay ran under a fault plan; None otherwise.
    chaos: Optional[Dict] = None

    @property
    def num_violations(self) -> int:
        return sum(len(batch) for batch in self.delivered)


@dataclass
class ScenarioReport:
    """The outcome of one differential scenario run."""

    scenario: Scenario
    oracle_stream: List[FrozenSet[Signature]]
    runs: List[BackendRun]
    divergences: List[Divergence]

    @property
    def ok(self) -> bool:
        return not self.divergences and all(run.error is None
                                            for run in self.runs)

    @property
    def oracle_violations(self) -> int:
        return sum(len(batch) for batch in self.oracle_stream)

    def describe(self) -> str:
        scenario = self.scenario
        lines = [f"{scenario.name}: {scenario.num_ops} ops, "
                 f"{self.oracle_violations} oracle violations, "
                 f"backends: " + ", ".join(run.backend for run in self.runs)]
        for run in self.runs:
            if run.error is not None:
                lines.append(f"  {run.backend}: ERROR {run.error}")
            else:
                status = ("agrees" if not any(
                    d.backend == run.backend for d in self.divergences)
                    else "DIVERGES")
                lines.append(f"  {run.backend}: {run.num_violations} "
                             f"violations in {run.seconds:.3f}s ({status})")
        for divergence in self.divergences:
            lines.append(divergence.describe())
        return "\n".join(lines)


def replay_signatures(scenario: Scenario, backend: str,
                      ops: Optional[Sequence[Op]] = None,
                      **backend_options) -> BackendRun:
    """Replay the trace through one fresh session; collect per-op
    delivered violation signatures."""
    from repro.api import VerificationSession

    ops = scenario.ops if ops is None else ops
    run = BackendRun(backend=backend)
    start = time.perf_counter()
    try:
        with VerificationSession(
                backend, width=scenario.width,
                properties=scenario.make_properties(),
                **backend_options) as session:
            for op in ops:
                result = session.apply(op)
                run.delivered.append(frozenset(
                    violation.signature
                    for violation in result.violations))
    except Exception as exc:  # a crash is a finding, not a fuzzer abort
        run.error = f"{type(exc).__name__}: {exc}"
    run.seconds = time.perf_counter() - start
    return run


def diff_streams(backend: str, ops: Sequence[Op],
                 oracle_stream: Sequence[FrozenSet[Signature]],
                 delivered: Sequence[FrozenSet[Signature]],
                 max_divergences: int = 1) -> List[Divergence]:
    """Per-op stream diff; reports up to ``max_divergences`` entries
    (the first is what the shrinker minimizes against)."""
    out: List[Divergence] = []
    for index, expected in enumerate(oracle_stream):
        actual = delivered[index] if index < len(delivered) else frozenset()
        if actual != expected:
            out.append(Divergence(
                backend=backend, op_index=index, op=ops[index],
                missing=frozenset(expected - actual),
                unexpected=frozenset(actual - expected)))
            if len(out) >= max_divergences:
                break
    return out


def run_scenario(scenario: Scenario, backends: Iterable[str],
                 backend_options: Optional[Dict[str, Dict]] = None,
                 max_divergences: int = 1) -> ScenarioReport:
    """Replay ``scenario`` through every backend and the oracle; diff."""
    oracle = SweepOracle(scenario.property_specs, width=scenario.width)
    oracle_stream = oracle.stream(scenario.ops)
    runs: List[BackendRun] = []
    divergences: List[Divergence] = []
    options = backend_options or {}
    for backend in backends:
        run = replay_signatures(scenario, backend,
                                **options.get(backend, {}))
        runs.append(run)
        if run.error is None:
            divergences.extend(diff_streams(
                backend, scenario.ops, oracle_stream, run.delivered,
                max_divergences=max_divergences))
    return ScenarioReport(scenario=scenario, oracle_stream=oracle_stream,
                          runs=runs, divergences=divergences)


def run_chaos_scenario(scenario: Scenario, backends: Iterable[str],
                       plan, work_dir: str,
                       backend_options: Optional[Dict[str, Dict]] = None,
                       max_divergences: int = 1,
                       checkpoint_every: int = 20) -> ScenarioReport:
    """Replay ``scenario`` through every backend *under injected
    faults*, then diff against the (fault-free) sweep oracle.

    The oracle never sees the faults — that is the point: a worker
    kill, a torn journal tail or a crashed checkpoint may cost recovery
    time, but the per-op violation stream each backend delivers (with
    recovered ops re-delivered in place) must still match the oracle
    byte-for-byte.  Each backend replays in its own ``SessionStore``
    directory under ``work_dir``; chaos annotations land on each run's
    ``chaos`` field.
    """
    import os

    from repro.faults.chaos import chaos_replay

    oracle = SweepOracle(scenario.property_specs, width=scenario.width)
    oracle_stream = oracle.stream(scenario.ops)
    runs: List[BackendRun] = []
    divergences: List[Divergence] = []
    options = backend_options or {}
    for backend in backends:
        store_dir = os.path.join(work_dir, f"chaos-{backend}")
        run = chaos_replay(scenario, backend, plan, store_dir,
                           checkpoint_every=checkpoint_every,
                           **options.get(backend, {}))
        runs.append(run)
        if run.error is None:
            divergences.extend(diff_streams(
                backend, scenario.ops, oracle_stream, run.delivered,
                max_divergences=max_divergences))
    return ScenarioReport(scenario=scenario, oracle_stream=oracle_stream,
                          runs=runs, divergences=divergences)


def run_corruption_scenario(scenario: Scenario, backends: Iterable[str],
                            plan, work_dir: str,
                            backend_options: Optional[Dict[str, Dict]] = None,
                            max_divergences: int = 1,
                            checkpoint_every: int = 20) -> ScenarioReport:
    """Replay ``scenario`` through every backend while *corrupting its
    persisted and in-memory state*, then diff against the oracle.

    The structure-aware twin of :func:`run_chaos_scenario`: snapshot
    byte flips, journal payload mutations and shard desyncs
    (:mod:`repro.faults.corruption`) instead of process faults.  The
    invariant is "loud failure or correct answers": recovery may refuse
    a damaged store (the harness rebuilds from rule zero), but the
    delivered stream must never silently diverge from the oracle.
    """
    import os

    from repro.faults.corruption import corruption_replay

    oracle = SweepOracle(scenario.property_specs, width=scenario.width)
    oracle_stream = oracle.stream(scenario.ops)
    runs: List[BackendRun] = []
    divergences: List[Divergence] = []
    options = backend_options or {}
    for backend in backends:
        store_dir = os.path.join(work_dir, f"corrupt-{backend}")
        run = corruption_replay(scenario, backend, plan, store_dir,
                                checkpoint_every=checkpoint_every,
                                **options.get(backend, {}))
        runs.append(run)
        if run.error is None:
            divergences.extend(diff_streams(
                backend, scenario.ops, oracle_stream, run.delivered,
                max_divergences=max_divergences))
    return ScenarioReport(scenario=scenario, oracle_stream=oracle_stream,
                          runs=runs, divergences=divergences)
