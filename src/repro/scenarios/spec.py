"""Scenario specifications: named, seed-reproducible update traces.

A :class:`Scenario` is the unit the differential machinery exchanges: a
flat operation trace (the paper's replayable ``+r``/``-r`` stream), the
topology it runs over, the *expected-property annotations* — which
:mod:`repro.api` property subscriptions the trace is meant to exercise,
plus free-text expectations for humans — and enough provenance (family,
seed, scale, event summary) to rebuild or shrink it.

Everything in a scenario is plain data on purpose:

* ``property_specs`` name registered property types
  (:data:`repro.api.properties.PROPERTY_TYPES`) with plain-data
  constructor keywords, so every consumer (one session per backend, the
  sweep oracle, a repro file) instantiates its *own* property objects —
  subscriptions are stateful and must never be shared across sessions,
* ``ops`` round-trip through both the text dataset format
  (:mod:`repro.datasets.format`, for ``deltanet replay``) and the
  :mod:`repro.persist` codec (for fuzzer repro files).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.api.properties import PROPERTY_TYPES, Property
from repro.datasets.format import Op
from repro.core.rules import Rule
from repro.topology.graph import Topology


class ScenarioError(ValueError):
    """A scenario request or trace is malformed."""


@dataclass(frozen=True)
class PropertySpec:
    """A property subscription as plain data: registry name + kwargs."""

    name: str
    options: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, name: str, **options: object) -> "PropertySpec":
        if name not in PROPERTY_TYPES:
            raise ScenarioError(
                f"unknown property {name!r}; registered: "
                f"{', '.join(sorted(PROPERTY_TYPES))}")
        return cls(name, tuple(sorted(options.items())))

    def make(self) -> Property:
        """A fresh property instance (never share one across sessions)."""
        return PROPERTY_TYPES[self.name](**dict(self.options))

    def to_state(self) -> Tuple[str, Tuple[Tuple[str, object], ...]]:
        return (self.name, self.options)

    @classmethod
    def from_state(cls, state: Sequence) -> "PropertySpec":
        name, options = state
        return cls(name, tuple((key, value) for key, value in options))

    def __repr__(self) -> str:
        opts = ", ".join(f"{k}={v!r}" for k, v in self.options)
        return f"{self.name}({opts})"


@dataclass
class Scenario:
    """One named, reproducible network lifecycle."""

    family: str
    name: str
    seed: int
    scale: float
    topology: Optional[Topology]
    ops: List[Op]
    property_specs: List[PropertySpec] = field(default_factory=list)
    #: Free-text expectation notes per property / aspect, for humans and
    #: ``deltanet scenario list`` — the *checked* invariant is
    #: cross-backend agreement, not these notes.
    expectations: Dict[str, str] = field(default_factory=dict)
    #: Event-script summary (e.g. ``{"fail": 12, "recover": 12}``).
    events: Dict[str, int] = field(default_factory=dict)
    width: int = 32

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    @property
    def num_inserts(self) -> int:
        return sum(1 for op in self.ops if op.is_insert)

    def make_properties(self) -> List[Property]:
        return [spec.make() for spec in self.property_specs]

    def describe(self) -> str:
        props = ", ".join(spec.name for spec in self.property_specs)
        return (f"{self.name}: {self.num_ops} ops "
                f"({self.num_inserts} inserts) over "
                f"{self.topology.name if self.topology else '?'}; "
                f"watching [{props}]")

    def validate(self) -> None:
        """Reject traces no backend could replay (see
        :func:`validate_trace`)."""
        validate_trace(self.ops, width=self.width)

    def __repr__(self) -> str:
        return (f"Scenario({self.name!r}, seed={self.seed}, "
                f"ops={self.num_ops})")


def validate_trace(ops: Sequence[Op], width: int = 32) -> None:
    """Check a trace is sequentially applicable on a fresh verifier.

    Every insert must use a fresh rule id (re-use is fine after the id
    was removed), every removal must name an installed id, and every
    rule interval must fit the header space.  Raises
    :class:`ScenarioError` naming the first offending op index.
    """
    space = 1 << width
    installed: Set[int] = set()
    for index, op in enumerate(ops):
        if op.is_insert:
            rule = op.rule
            if rule is None:
                raise ScenarioError(f"op {index}: insert without a rule")
            if rule.rid in installed:
                raise ScenarioError(
                    f"op {index}: duplicate insert of rule id {rule.rid}")
            if not 0 <= rule.lo < rule.hi <= space:
                raise ScenarioError(
                    f"op {index}: rule {rule.rid} interval "
                    f"[{rule.lo}:{rule.hi}) outside the {width}-bit space")
            installed.add(rule.rid)
        else:
            if op.rid not in installed:
                raise ScenarioError(
                    f"op {index}: removal of unknown rule id {op.rid}")
            installed.discard(op.rid)


def repair_trace(ops: Sequence[Op], width: int = 32) -> List[Op]:
    """Drop the ops that make a subsequence invalid (shrinker support).

    Deleting ops from a valid trace can orphan others (a removal whose
    insert was dropped, a re-insert whose removal was dropped).  The
    repair keeps exactly the ops that stay valid under the same
    simulation :func:`validate_trace` runs, preserving order — so any
    subset of a trace becomes replayable again.
    """
    space = 1 << width
    installed: Set[int] = set()
    kept: List[Op] = []
    for op in ops:
        if op.is_insert:
            rule = op.rule
            if (rule is None or rule.rid in installed
                    or not 0 <= rule.lo < rule.hi <= space):
                continue
            installed.add(rule.rid)
        else:
            if op.rid not in installed:
                continue
            installed.discard(op.rid)
        kept.append(op)
    return kept


def ops_to_state(ops: Sequence[Op]) -> List[Tuple]:
    """Codec-friendly plain-data form of a trace (see ``repro.persist``)."""
    return [("+", op.rule.to_state()) if op.is_insert else ("-", op.rid)
            for op in ops]


def ops_from_state(state: Sequence[Sequence]) -> List[Op]:
    ops: List[Op] = []
    for kind, payload in state:
        if kind == "+":
            ops.append(Op.insert(Rule.from_state(payload)))
        elif kind == "-":
            ops.append(Op.remove(payload))
        else:
            raise ScenarioError(f"bad op kind {kind!r} in trace state")
    return ops
