"""The scenario engine: resolve a family, derive a trace, validate it.

``build_scenario`` is the single constructor every consumer uses — the
CLI (``deltanet scenario run``), the differential fuzzer
(:mod:`repro.fuzz`), the CI scenario matrix and the benchmarks — so a
``(family, seed, scale)`` triple names exactly one trace everywhere.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterable, Optional, Tuple

from repro.scenarios.families import FAMILIES, Family
from repro.scenarios.spec import Scenario, ScenarioError


def scenario_families() -> Tuple[str, ...]:
    """All registered family names, sorted."""
    return tuple(sorted(FAMILIES))


def family_info(name: str) -> Family:
    family = FAMILIES.get(name)
    if family is None:
        raise ScenarioError(
            f"unknown scenario family {name!r}; available: "
            f"{', '.join(scenario_families())}")
    return family


def _family_rng(family: str, seed: int) -> random.Random:
    # crc32, not hash(): str hashing is per-process randomized and the
    # same (family, seed) must rebuild the same trace in any process.
    return random.Random((seed << 32) ^ zlib.crc32(family.encode()))


def build_scenario(family: str, seed: int = 0, scale: float = 1.0,
                   width: int = 32) -> Scenario:
    """Build (and validate) one scenario trace.

    Deterministic: the same arguments produce the identical operation
    list, byte-for-byte in the text dataset format, in every process.
    """
    info = family_info(family)
    if scale <= 0:
        raise ScenarioError(f"scale must be positive, got {scale}")
    built = info.builder(_family_rng(family, seed), scale)
    scenario = Scenario(
        family=family,
        name=f"{family}/seed{seed}/x{scale:g}",
        seed=seed, scale=scale,
        topology=built.topology,
        ops=built.ops,
        property_specs=built.property_specs,
        expectations=built.expectations,
        events=built.events,
        width=width,
    )
    scenario.validate()
    if not scenario.ops:
        raise ScenarioError(
            f"family {family!r} built an empty trace at scale {scale}")
    return scenario


def random_scenario(rng: random.Random,
                    families: Optional[Iterable[str]] = None,
                    scales: Tuple[float, ...] = (0.2, 0.35, 0.5),
                    width: int = 32) -> Scenario:
    """A random scenario for the fuzzer: random family, fresh seed,
    small scale (the oracle re-sweeps every property after every op, so
    fuzz traces stay in the hundreds of ops)."""
    pool = sorted(families) if families is not None else scenario_families()
    for name in pool:
        family_info(name)  # fail fast on typos before burning budget
    return build_scenario(rng.choice(pool), seed=rng.getrandbits(24),
                          scale=rng.choice(scales), width=width)
