"""The scenario families: composable network lifecycles.

Each family composes three existing layers into one seed-reproducible
operation trace:

* a **topology** from :mod:`repro.topology.generators` (picked
  deterministically from the scenario seed),
* a **routing behavior** — Libra-style shortest-path rule generation
  (:mod:`repro.routing.rulegen`) or the SDN-IP emulation
  (:mod:`repro.sdn`) fed by BGP update streams (:mod:`repro.bgp`),
* a **timed event script** — link flaps, failover storms, rolling
  router maintenance, BGP session resets, ACL injection, prefix
  de-aggregation waves — driven through
  :class:`repro.sdn.events.EventInjector` or applied directly to the
  rule stream.

A family builder receives ``(rng, scale)`` and returns a
:class:`_Built`; :func:`repro.scenarios.engine.build_scenario` wraps it
into a validated :class:`~repro.scenarios.spec.Scenario`.  ``scale``
stretches trace sizes smoothly (0.2 is fuzzer/smoke scale, 1.0 the
default); every random choice must come from ``rng`` so the same
``(family, seed, scale)`` triple rebuilds the identical trace in any
process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bgp.prefixes import Prefix, PrefixPool
from repro.bgp.updates import BgpUpdate, UpdateStream
from repro.core.prefix import make_interval
from repro.core.rules import Rule
from repro.datasets.format import Op
from repro.routing.rulegen import ShortestPathRuleGenerator, generate_ops
from repro.scenarios.spec import PropertySpec
from repro.sdn.controller import Controller
from repro.sdn.events import EventInjector
from repro.sdn.sdnip import SdnIp
from repro.topology import generators
from repro.topology.graph import Topology


@dataclass
class _Built:
    """What a family builder hands back to the engine."""

    topology: Topology
    ops: List[Op]
    property_specs: List[PropertySpec]
    expectations: Dict[str, str] = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)


Builder = Callable[[random.Random, float], _Built]


@dataclass(frozen=True)
class Family:
    """One named scenario family (see ``deltanet scenario list``)."""

    name: str
    description: str
    knobs: str
    builder: Builder


def _scaled(base: int, scale: float, floor: int = 1) -> int:
    return max(floor, int(round(base * scale)))


def _pick_topology(rng: random.Random, scale: float) -> Topology:
    """A modest topology, varied by seed (kept small: the sweep oracle
    re-checks every property after every op)."""
    choice = rng.randrange(5)
    if choice == 0:
        return generators.campus(seed=rng.randrange(1 << 16))
    if choice == 1:
        return generators.airtel()
    if choice == 2:
        return generators.ring(rng.randint(5, 8))
    if choice == 3:
        return generators.fat_tree(4)
    return generators.isp_like(rng.randint(10, 14 + int(6 * scale)),
                               extra_links=rng.randint(4, 10),
                               seed=rng.randrange(1 << 16))


def _nodes(topology: Topology) -> List[object]:
    return sorted(topology.nodes, key=repr)


# -- SDN-IP worlds --------------------------------------------------------------


@dataclass
class _SdnWorld:
    controller: Controller
    sdnip: SdnIp
    injector: EventInjector
    stream: UpdateStream
    ops: List[Op]
    peers: List[str]


def _sdn_world(rng: random.Random, scale: float,
               topology: Optional[Topology] = None,
               n_peers: int = 3,
               prefixes_per_peer: Optional[int] = None) -> _SdnWorld:
    """An SDN-IP deployment with its rule churn captured as ops."""
    topology = topology or _pick_topology(rng, scale)
    controller = Controller(topology)
    ops: List[Op] = []
    controller.subscribe(ops.append)
    switches = _nodes(topology)
    n_peers = min(n_peers, len(switches))
    attach = rng.sample(switches, n_peers)
    peers = [f"p{i}" for i in range(n_peers)]
    peer_attachments = dict(zip(peers, attach))
    for peer in peers:
        controller.topology.add_node(peer)
    sdnip = SdnIp(controller, peer_attachments)
    if prefixes_per_peer is None:
        prefixes_per_peer = _scaled(3, scale)
    stream = UpdateStream(peers, PrefixPool(seed=rng.randrange(1 << 16)),
                          prefixes_per_peer=prefixes_per_peer,
                          seed=rng.randrange(1 << 16))
    sdnip.handle_updates(stream.initial_announcements())
    return _SdnWorld(controller, sdnip, EventInjector(sdnip), stream, ops,
                     peers)


def _sdn_base_specs(world: _SdnWorld) -> List[PropertySpec]:
    """Loops + blackholes with the border routers as expected sinks."""
    return [
        PropertySpec.of("loops"),
        PropertySpec.of("blackholes",
                        expected_sinks=tuple(sorted(world.peers))),
    ]


def _event_counts(injector: EventInjector) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for kind, _edge in injector.events:
        counts[kind] = counts.get(kind, 0) + 1
    return counts


# -- the eight families ---------------------------------------------------------


def _build_table_fill(rng: random.Random, scale: float) -> _Built:
    topology = _pick_topology(rng, scale)
    pool = PrefixPool(seed=rng.randrange(1 << 16))
    prefixes = pool.sample(_scaled(8, scale, floor=2))
    priority_mode = rng.choice(("random", "plen"))
    ops = generate_ops(topology, prefixes, seed=rng.randrange(1 << 16),
                       with_removals=True, priority_mode=priority_mode)
    nodes = _nodes(topology)
    src, dst = rng.sample(nodes, 2)
    specs = [
        PropertySpec.of("loops"),
        PropertySpec.of("blackholes"),
        PropertySpec.of("reachability", src=src, dst=dst,
                        expect_reachable=True),
    ]
    return _Built(
        topology, ops, specs,
        expectations={
            "loops": ("none while a single shortest-path tree per prefix "
                      "is installed with plen priorities; random "
                      "priorities may interleave trees into cycles"),
            "blackholes": "fire at each prefix's destination router",
            "reachability": f"{src}->{dst} violated until rules land",
        },
        events={"insert": sum(op.is_insert for op in ops),
                "remove": sum(not op.is_insert for op in ops),
                "priority_mode_plen": int(priority_mode == "plen")})


def _build_link_flaps(rng: random.Random, scale: float) -> _Built:
    world = _sdn_world(rng, scale)
    world.injector.random_flaps(_scaled(6, scale, floor=2), rng)
    specs = _sdn_base_specs(world)
    internal = [node for node in _nodes(world.controller.topology)
                if node not in world.peers]
    src = rng.choice(internal)
    dst = rng.choice(world.peers)
    specs.append(PropertySpec.of("reachability", src=src, dst=dst,
                                 expect_reachable=True))
    return _Built(
        world.controller.topology, world.ops, specs,
        expectations={
            "loops": "transient loops possible while SDN-IP re-diffs "
                     "per-prefix trees during a flap",
            "blackholes": "transient holes while a reprogram is mid-diff",
        },
        events=_event_counts(world.injector))


def _build_failover_storm(rng: random.Random, scale: float) -> _Built:
    world = _sdn_world(rng, scale)
    waves = _scaled(2, scale)
    for _wave in range(waves):
        world.injector.failure_storm(rng.randint(2, 4), rng)
    return _Built(
        world.controller.topology, world.ops, _sdn_base_specs(world),
        expectations={
            "blackholes": "switches cut off mid-storm blackhole traffic "
                          "until recovery restores a path",
        },
        events=dict(_event_counts(world.injector), waves=waves))


def _build_rolling_upgrade(rng: random.Random, scale: float) -> _Built:
    # A small ring keeps every-op waypoint propagation affordable.
    topology = generators.ring(rng.randint(5, 7))
    world = _sdn_world(rng, scale, topology=topology, n_peers=2)
    switches = [node for node in _nodes(topology)
                if node not in world.peers]
    n_drained = min(_scaled(3, scale, floor=2), len(switches))
    drained = world.injector.rolling_maintenance(
        iter(rng.sample(switches, n_drained)))
    specs = _sdn_base_specs(world)
    egress = world.sdnip.peer_attachments[world.peers[0]]
    candidates = [node for node in switches if node != egress]
    src = rng.choice(candidates)
    waypoints = [node for node in candidates if node != src]
    if waypoints:
        specs.append(PropertySpec.of("waypoint", src=src,
                                     dst=world.peers[0],
                                     waypoint=rng.choice(waypoints)))
    return _Built(
        topology, world.ops, specs,
        expectations={
            "waypoint": "violated whenever re-routing finds a path "
                        "around the nominated waypoint",
        },
        events=dict(_event_counts(world.injector), drained=drained))


def _build_bgp_reset(rng: random.Random, scale: float) -> _Built:
    world = _sdn_world(rng, scale, prefixes_per_peer=_scaled(4, scale))
    resets = _scaled(2, scale)
    for _reset in range(resets):
        peer = rng.choice(world.peers)
        mine = [(pfx, plen) for p, pfx, plen in world.stream.advertisements
                if p == peer]
        # Session down: the RIB loses every route learned from the peer.
        for prefix, path_len in mine:
            world.sdnip.handle_update(
                BgpUpdate("withdraw", prefix, peer, path_len))
        # Session up: re-learn with fresh AS-path lengths — best routes
        # may land on different egresses than before (RIB churn).
        for prefix, _old in mine:
            world.sdnip.handle_update(
                BgpUpdate("announce", prefix, peer, rng.randint(1, 6)))
    return _Built(
        world.controller.topology, world.ops, _sdn_base_specs(world),
        expectations={
            "blackholes": "prefixes routed solely via the reset peer "
                          "lose their egress until re-announcement",
        },
        events={"resets": resets})


def _build_churn_mix(rng: random.Random, scale: float) -> _Built:
    world = _sdn_world(rng, scale)
    churn = _scaled(20, scale, floor=5)
    flap_every = 7
    for index, update in enumerate(world.stream.churn(churn)):
        world.sdnip.handle_update(update)
        if (index + 1) % flap_every == 0:
            world.injector.random_flaps(1, rng)
    return _Built(
        world.controller.topology, world.ops, _sdn_base_specs(world),
        expectations={
            "loops": "the kitchen sink: route churn interleaved with "
                     "flaps is the likeliest transient-loop source",
        },
        events=dict(_event_counts(world.injector), churn=churn))


#: Manual rule-id space for injected ACL rules, far above anything the
#: shortest-path generator allocates.
_ACL_RID_BASE = 1_000_000


def _build_acl_injection(rng: random.Random, scale: float) -> _Built:
    topology = _pick_topology(rng, scale)
    pool = PrefixPool(seed=rng.randrange(1 << 16))
    prefixes = pool.sample(_scaled(6, scale, floor=2))
    ops = generate_ops(topology, prefixes, seed=rng.randrange(1 << 16),
                       with_removals=False, priority_mode="plen")
    nodes = _nodes(topology)
    injected: List[int] = []
    n_drops = _scaled(8, scale, floor=3)
    for index in range(n_drops):
        lo, hi = PrefixPool.to_interval(rng.choice(prefixes))
        rid = _ACL_RID_BASE + index
        # Outrank every forwarding rule so the ACL actually captures
        # traffic (plen priorities top out at 32).
        ops.append(Op.insert(Rule.drop(rid, lo, hi,
                                       64 + rng.randint(0, 64),
                                       rng.choice(nodes))))
        injected.append(rid)
        if injected and rng.random() < 0.4:
            ops.append(Op.remove(injected.pop(rng.randrange(len(injected)))))
    lifted = sum(1 for op in ops
                 if not op.is_insert and op.rid >= _ACL_RID_BASE)
    half = 1 << 31
    specs = [
        PropertySpec.of("loops"),
        PropertySpec.of("blackholes"),
        PropertySpec.of("isolation",
                        slice_a=((0, half),),
                        slice_b=((half, 1 << 32),)),
    ]
    return _Built(
        topology, ops, specs,
        expectations={
            "isolation": "links carrying prefixes from both address "
                         "halves violate the slice split",
            "blackholes": "never caused by the ACLs themselves — drops "
                          "are explicit, not silent",
        },
        events={"acl_inserted": n_drops, "acl_lifted": lifted})


def _sub_prefix(rng: random.Random, parent: Prefix, plen: int) -> Prefix:
    parent_lo, parent_plen = parent
    offset_bits = plen - parent_plen
    offset = rng.getrandbits(offset_bits) if offset_bits else 0
    return (parent_lo | (offset << (32 - plen)), plen)


def _build_deaggregation(rng: random.Random, scale: float) -> _Built:
    topology = _pick_topology(rng, scale)
    generator = ShortestPathRuleGenerator(topology,
                                         seed=rng.randrange(1 << 16))
    nodes = _nodes(topology)
    ops: List[Op] = []
    aggregates: List[Prefix] = []
    for _ in range(_scaled(3, scale, floor=2)):
        plen = rng.randint(12, 16)
        lo, _hi = make_interval(rng.getrandbits(32), plen)
        aggregates.append((lo, plen))
    agg_dest = rng.choice(nodes)
    for aggregate in aggregates:
        for rule in generator.rules_for_prefix(aggregate,
                                               destination=agg_dest,
                                               priority=aggregate[1]):
            ops.append(Op.insert(rule))
    waves = 2
    specific_rules: List[Rule] = []
    for _wave in range(waves):
        for aggregate in aggregates:
            # A de-aggregation wave: more-specifics split off to a
            # different egress, winning by longest-prefix-match.
            dest = rng.choice(nodes)
            for _ in range(_scaled(2, scale)):
                specific = _sub_prefix(
                    rng, aggregate, rng.randint(max(aggregate[1] + 1, 20), 24))
                for rule in generator.rules_for_prefix(
                        specific, destination=dest, priority=specific[1]):
                    ops.append(Op.insert(rule))
                    specific_rules.append(rule)
        # Partial re-aggregation: withdraw a random half of the
        # specifics announced so far before the next wave lands.
        rng.shuffle(specific_rules)
        for rule in specific_rules[:len(specific_rules) // 2]:
            ops.append(Op.remove(rule.rid))
        del specific_rules[:len(specific_rules) // 2]
    src, dst = rng.sample(nodes, 2)
    specs = [
        PropertySpec.of("loops"),
        PropertySpec.of("blackholes"),
        PropertySpec.of("reachability", src=src, dst=dst,
                        expect_reachable=True),
    ]
    return _Built(
        topology, ops, specs,
        expectations={
            "loops": "none: plen priorities keep each packet on exactly "
                     "one shortest-path tree at a time",
            "blackholes": "fire at the aggregate and specific egresses",
        },
        events={"aggregates": len(aggregates), "waves": waves})


FAMILIES: Dict[str, Family] = {
    family.name: family for family in (
        Family(
            "table-fill",
            "Route-Views prefixes along shortest paths: bulk insert, "
            "then random-order removal (the §4.2.1 recipe).",
            "scale ~ prefix count; seed picks topology + priority mode",
            _build_table_fill),
        Family(
            "link-flaps",
            "SDN-IP re-routing under seeded random single-link "
            "fail/recover cycles.",
            "scale ~ flap count and prefixes/peer; seed picks topology "
            "and flap order",
            _build_link_flaps),
        Family(
            "failover-storm",
            "Correlated multi-link outages held down together, then "
            "staggered random-order recovery.",
            "scale ~ storm waves; seed picks storm membership",
            _build_failover_storm),
        Family(
            "rolling-upgrade",
            "Per-router maintenance over a ring: drain every incident "
            "link, restore, move to the next router.",
            "scale ~ routers drained; seed picks ring size and order",
            _build_rolling_upgrade),
        Family(
            "bgp-reset",
            "BGP session resets: withdraw a peer's full RIB "
            "contribution, re-announce with fresh AS-path lengths.",
            "scale ~ resets and prefixes/peer; seed picks the peers",
            _build_bgp_reset),
        Family(
            "churn-mix",
            "Random announce/withdraw BGP churn interleaved with link "
            "flaps — the kitchen-sink lifecycle.",
            "scale ~ churn length; seed drives every choice",
            _build_churn_mix),
        Family(
            "acl-injection",
            "High-priority drop rules injected (and lifted) over a "
            "steady shortest-path plane, with slice isolation watched.",
            "scale ~ base prefixes and ACL count; seed picks placement",
            _build_acl_injection),
        Family(
            "deaggregation",
            "Prefix de-aggregation waves: /20-/24 more-specifics split "
            "traffic away from /12-/16 aggregates, then re-aggregate.",
            "scale ~ aggregates and specifics per wave; seed picks "
            "egresses",
            _build_deaggregation),
    )
}
