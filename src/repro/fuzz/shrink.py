"""Trace shrinking: minimize a failing trace while it still fails.

Classic ddmin-style greedy chunk removal over the operation list, with
one twist the dataset format needs: deleting ops from a valid trace can
orphan others (a removal whose insert is gone, a re-insert whose removal
is gone), so every candidate subsequence is first repaired with
:func:`repro.scenarios.spec.repair_trace` — the predicate only ever sees
replayable traces.

The predicate is expensive (each call replays the candidate through the
diverging backend *and* the sweep oracle), so the shrinker is budgeted:
it stops after ``max_probes`` predicate calls and returns the best
1-minimal-so-far trace.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.datasets.format import Op
from repro.scenarios.spec import repair_trace

Predicate = Callable[[List[Op]], bool]


def shrink_trace(ops: Sequence[Op], still_fails: Predicate,
                 width: int = 32, max_probes: int = 200) -> List[Op]:
    """Greedy minimization of ``ops`` under ``still_fails``.

    ``still_fails(candidate)`` must return True when the (already
    repaired, replayable) candidate still reproduces the failure.  The
    input trace is assumed failing; the result is a subsequence of it
    that still fails, usually orders of magnitude shorter.
    """
    current = repair_trace(ops, width=width)
    probes = 0

    def probe(candidate: List[Op]) -> bool:
        nonlocal probes
        probes += 1
        return still_fails(candidate)

    chunk = max(1, len(current) // 2)
    while chunk >= 1 and probes < max_probes:
        index = 0
        shrunk_this_pass = False
        while index < len(current) and probes < max_probes:
            candidate = repair_trace(
                current[:index] + current[index + chunk:], width=width)
            if candidate and len(candidate) < len(current) \
                    and probe(candidate):
                current = candidate
                shrunk_this_pass = True
                # Do not advance: the same index now covers new ops.
            else:
                index += chunk
        if chunk == 1:
            if not shrunk_this_pass:
                break  # 1-minimal: no single op can be dropped
        else:
            chunk //= 2
    return current
