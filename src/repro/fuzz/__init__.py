"""`repro.fuzz` — the cross-backend differential fuzzer.

Random scenarios (:mod:`repro.scenarios`) replayed through every
registered backend and the sweep oracle; per-update violation streams
diffed; failing traces shrunk to 1-minimal repro files.  CLI:
``deltanet fuzz --budget N`` / ``deltanet fuzz --replay FILE``.
"""

from repro.fuzz.differential import (
    FuzzFailure, FuzzReport, fuzz, minimize_failure, replay_repro,
    save_failure_artifacts, speculative_trial,
)
from repro.fuzz.reprofile import (
    REPRO_VERSION, ReproFile, load_repro, save_repro,
)
from repro.fuzz.shrink import shrink_trace

__all__ = [
    "FuzzFailure",
    "FuzzReport",
    "REPRO_VERSION",
    "ReproFile",
    "fuzz",
    "load_repro",
    "minimize_failure",
    "replay_repro",
    "save_failure_artifacts",
    "save_repro",
    "shrink_trace",
    "speculative_trial",
]
