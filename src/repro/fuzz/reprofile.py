"""Fuzzer repro files: minimal failing traces as durable artifacts.

A repro file is one :mod:`repro.persist.codec` document (no pickle, no
JSON type loss — node ids and interval bounds round-trip exactly)
holding everything needed to re-run a differential failure on another
machine: the trace, the property subscriptions, the provenance
(family/seed/scale) and the divergence summary.  ``save_repro`` also
writes the sibling ``<stem>.ops`` text file in the §4.2 dataset format,
so the trace replays through plain ``deltanet replay`` too.

Re-run a saved failure with::

    deltanet fuzz --replay failure.repro

or inspect the raw trace with ``deltanet replay failure.ops``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.datasets.format import Op, save_ops
from repro.persist.codec import decode, encode
from repro.scenarios.spec import (
    PropertySpec, Scenario, ScenarioError, ops_from_state, ops_to_state,
)

#: Bump on incompatible layout changes; readers reject newer majors.
REPRO_VERSION = 1

_MAGIC = b"DNREPRO1"


@dataclass
class ReproFile:
    """A decoded repro document."""

    family: str
    seed: int
    scale: float
    width: int
    property_specs: List[PropertySpec]
    ops: List[Op]
    backends: List[str]
    #: Which backends diverged, and a human summary of the first diff.
    diverging: List[str] = field(default_factory=list)
    notes: str = ""

    def scenario(self) -> Scenario:
        """The trace as a replayable scenario (topology-free)."""
        return Scenario(
            family=self.family,
            name=f"repro:{self.family}/seed{self.seed}/x{self.scale:g}",
            seed=self.seed, scale=self.scale, topology=None,
            ops=list(self.ops),
            property_specs=list(self.property_specs),
            width=self.width)


def save_repro(path: str, scenario: Scenario, backends: Sequence[str],
               diverging: Sequence[str], notes: str = "",
               ops: Optional[Sequence[Op]] = None) -> Tuple[str, str]:
    """Write ``path`` (codec) plus the sibling ``.ops`` text trace.

    ``ops`` overrides the scenario's trace (the shrunk version);
    returns ``(repro_path, ops_path)``.
    """
    trace = list(scenario.ops if ops is None else ops)
    document = {
        "version": REPRO_VERSION,
        "family": scenario.family,
        "seed": scenario.seed,
        "scale": scenario.scale,
        "width": scenario.width,
        "property_specs": [spec.to_state()
                           for spec in scenario.property_specs],
        "ops": ops_to_state(trace),
        "backends": list(backends),
        "diverging": list(diverging),
        "notes": notes,
    }
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(encode(document))
    ops_path = os.path.splitext(path)[0] + ".ops"
    save_ops(trace, ops_path)
    return path, ops_path


def load_repro(path: str) -> ReproFile:
    with open(path, "rb") as handle:
        raw = handle.read()
    if not raw.startswith(_MAGIC):
        raise ScenarioError(f"{path!r} is not a deltanet repro file")
    document = decode(raw[len(_MAGIC):])
    version = document.get("version")
    if version != REPRO_VERSION:
        raise ScenarioError(
            f"{path!r} has repro version {version!r}; this build reads "
            f"{REPRO_VERSION}")
    return ReproFile(
        family=document["family"],
        seed=document["seed"],
        scale=document["scale"],
        width=document["width"],
        property_specs=[PropertySpec.from_state(state)
                        for state in document["property_specs"]],
        ops=ops_from_state(document["ops"]),
        backends=list(document["backends"]),
        diverging=list(document["diverging"]),
        notes=document["notes"],
    )
