"""The cross-backend differential fuzzer.

Each iteration draws a random scenario (family × topology × routing ×
event script, all from one seed), replays it through every requested
backend and the sweep oracle, and diffs the per-update violation
streams.  On a mismatch the trace is shrunk to a 1-minimal failing
subsequence against the first diverging backend and written out as a
:mod:`repro.fuzz.reprofile` artifact (codec document + ``.ops`` text
twin), so the failure replays anywhere with ``deltanet fuzz --replay``.

The fuzzer treats a backend *crash* the same as a stream divergence —
an exception mid-trace is minimized and reported, not propagated.

With ``chaos=True`` every trace additionally replays under a
seed-derived :class:`~repro.faults.chaos.ChaosPlan` — worker kills,
blackholed pipes, torn journal tails, crashed checkpoints — and the
recovered stream is still diffed against the *fault-free* sweep
oracle.  A chaos failure is reported un-shrunk: the fault schedule is
keyed to op indices, so removing ops would change which faults fire;
the ``(scenario seed, chaos seed)`` pair in the artifact reproduces it
exactly instead.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from repro.datasets.format import Op
from repro.scenarios.engine import random_scenario
from repro.scenarios.oracle import SweepOracle
from repro.scenarios.runner import (
    ScenarioReport, diff_streams, replay_signatures, run_scenario,
)
from repro.scenarios.spec import Scenario
from repro.fuzz.reprofile import save_repro
from repro.fuzz.shrink import shrink_trace

Log = Callable[[str], None]


@dataclass
class FuzzFailure:
    """One minimized cross-backend disagreement."""

    scenario: Scenario
    report: ScenarioReport
    diverging: List[str]
    shrunk_ops: List[Op]
    repro_path: Optional[str] = None
    ops_path: Optional[str] = None
    #: The fault schedule the trace ran under (chaos mode); None for
    #: plain differential failures.
    chaos_plan: Optional[object] = None

    def describe(self) -> str:
        if self.chaos_plan is not None:
            lines = [f"FAILURE {self.scenario.name}: "
                     f"{', '.join(self.diverging)} disagree with the "
                     f"fault-free oracle under injected faults "
                     f"(trace {self.scenario.num_ops} ops, not shrunk — "
                     f"the fault schedule is index-keyed)",
                     "  " + self.chaos_plan.describe().replace("\n", "\n  ")]
        else:
            lines = [f"FAILURE {self.scenario.name}: "
                     f"{', '.join(self.diverging)} disagree with the oracle "
                     f"(trace {self.scenario.num_ops} ops, minimized to "
                     f"{len(self.shrunk_ops)})"]
        if self.repro_path:
            lines.append(f"  repro: {self.repro_path} "
                         f"(text twin: {self.ops_path})")
        lines.append(self.report.describe())
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    budget: int
    attempted: int = 0
    passed: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed: float = 0.0
    stopped_early: bool = False
    chaos: bool = False
    corrupt: bool = False
    speculate: bool = False
    #: Corruption mode only: daemon frame-mutation trials run and the
    #: protocol problems they surfaced (accepted mutants, sequence
    #: drift, oracle divergence).
    frame_trials: int = 0
    frame_problems: List[str] = field(default_factory=list)
    #: Speculation mode only: per-backend speculative replay trials and
    #: the divergences they surfaced (speculative preview != committed
    #: stream, or a discarded child leaking into the parent).
    spec_trials: int = 0
    spec_problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (not self.failures and not self.frame_problems
                and not self.spec_problems)

    def describe(self) -> str:
        status = "OK" if self.ok else (
            f"{len(self.failures)} FAILURE(S), "
            f"{len(self.frame_problems)} frame problem(s), "
            f"{len(self.spec_problems)} speculation problem(s)")
        early = " (time budget hit)" if self.stopped_early else ""
        mode = ("corruption fuzz" if self.corrupt
                else "chaos fuzz" if self.chaos
                else "speculation fuzz" if self.speculate else "fuzz")
        out = (f"{mode}: {self.attempted}/{self.budget} traces{early}, "
               f"{self.passed} agreed, {status}, {self.elapsed:.1f}s")
        if self.corrupt:
            out += f" ({self.frame_trials} frame trials)"
        if self.speculate:
            out += f" ({self.spec_trials} speculative replays)"
        for problem in self.frame_problems:
            out += f"\n  frame problem: {problem}"
        for problem in self.spec_problems:
            out += f"\n  speculation problem: {problem}"
        return out


def _still_fails(scenario: Scenario, backend: str) -> Callable:
    """The shrinker predicate: does a candidate trace still diverge
    (or crash) on ``backend`` vs a fresh oracle?"""

    def predicate(candidate: List[Op]) -> bool:
        oracle = SweepOracle(scenario.property_specs, width=scenario.width)
        try:
            oracle_stream = oracle.stream(candidate)
        except Exception:
            # The repaired candidate broke the oracle itself — not a
            # backend failure; reject the candidate.
            return False
        run = replay_signatures(scenario, backend, ops=candidate)
        if run.error is not None:
            return True
        return bool(diff_streams(backend, candidate, oracle_stream,
                                 run.delivered))

    return predicate


def minimize_failure(scenario: Scenario, report: ScenarioReport,
                     max_probes: int = 150) -> FuzzFailure:
    """Shrink a failing scenario against its first diverging backend."""
    diverging = sorted({d.backend for d in report.divergences} |
                       {run.backend for run in report.runs
                        if run.error is not None})
    target = diverging[0]
    shrunk = shrink_trace(scenario.ops, _still_fails(scenario, target),
                          width=scenario.width, max_probes=max_probes)
    return FuzzFailure(scenario=scenario, report=report,
                       diverging=diverging, shrunk_ops=shrunk)


def save_failure_artifacts(failure: FuzzFailure, report: ScenarioReport,
                           backends: Sequence[str],
                           artifacts_dir: str) -> None:
    """Write a failure's minimized repro file + ``.ops`` twin.

    The single artifact-format authority: the fuzz campaign loop and
    ``deltanet scenario run --artifacts`` both route through here, so
    stem naming and the divergence notes stay identical everywhere.
    """
    os.makedirs(artifacts_dir, exist_ok=True)
    scenario = failure.scenario
    stem = os.path.join(artifacts_dir,
                        f"repro-{scenario.family}-seed{scenario.seed}")
    if report.divergences:
        notes = report.divergences[0].describe()
    else:
        notes = "; ".join(f"{run.backend}: {run.error}"
                          for run in report.runs
                          if run.error is not None)
    if failure.chaos_plan is not None:
        notes = failure.chaos_plan.describe() + "\n" + notes
    failure.repro_path, failure.ops_path = save_repro(
        stem + ".repro", scenario, backends, failure.diverging,
        notes=notes, ops=failure.shrunk_ops)


def speculative_trial(scenario: Scenario, backend: str,
                      rng: random.Random,
                      max_chunk: int = 8) -> List[str]:
    """Replay one trace speculatively and diff it against a straight run.

    The trace is split into random chunks; each chunk is first applied
    to a copy-on-write speculative child, the child's loop answer is
    recorded, and the chunk is then either committed (the buffered ops
    replay onto the parent) or discarded and re-applied directly.  Three
    invariants are checked after every chunk: the committed parent
    answer matches the child's preview, a discarded child left no trace,
    and the speculative session tracks a session that never speculated
    (same loops, same state digest).  Returns human-readable problem
    strings (empty = clean).
    """
    from repro.api import Loops, VerificationSession

    problems: List[str] = []
    straight = VerificationSession(backend, width=scenario.width)
    spec = VerificationSession(backend, width=scenario.width)
    try:
        ops = list(scenario.ops)
        index = 0
        while index < len(ops) and not problems:
            chunk = ops[index:index + rng.randint(1, max_chunk)]
            index += len(chunk)
            for op in chunk:
                straight.apply(op)
            before = sorted(spec.query(Loops()).violations, key=repr)
            child = spec.speculate()
            try:
                for op in chunk:
                    child.apply(op)
                preview = sorted(child.query(Loops()).violations, key=repr)
                if rng.random() < 0.25:
                    child.discard()
                    leaked = sorted(spec.query(Loops()).violations, key=repr)
                    if leaked != before:
                        problems.append(
                            f"{backend}: discarded child leaked into the "
                            f"parent at op {index} ({before!r} -> "
                            f"{leaked!r})")
                    for op in chunk:
                        spec.apply(op)
                else:
                    child.commit()
            finally:
                child.discard()
            committed = sorted(spec.query(Loops()).violations, key=repr)
            if committed != preview:
                problems.append(
                    f"{backend}: committed loops != speculative preview "
                    f"at op {index} ({preview!r} -> {committed!r})")
            reference = sorted(straight.query(Loops()).violations, key=repr)
            if committed != reference:
                problems.append(
                    f"{backend}: speculative replay diverged from the "
                    f"straight replay at op {index} ({reference!r} vs "
                    f"{committed!r})")
        spec_digest = spec.state_digest()
        straight_digest = straight.state_digest()
        if (spec_digest is not None and straight_digest is not None
                and spec_digest != straight_digest):
            problems.append(
                f"{backend}: final state digest differs from the "
                f"straight replay ({straight_digest[:16]}… vs "
                f"{spec_digest[:16]}…)")
    except Exception as exc:
        problems.append(f"{backend}: speculative replay crashed: "
                        f"{type(exc).__name__}: {exc}")
    finally:
        straight.close()
        spec.close()
    return problems


def fuzz(budget: int, seed: int = 0,
         backends: Optional[Iterable[str]] = None,
         families: Optional[Iterable[str]] = None,
         width: int = 32,
         artifacts_dir: Optional[str] = None,
         time_budget: Optional[float] = None,
         shrink_probes: int = 150,
         chaos: bool = False,
         chaos_faults: int = 4,
         corrupt: bool = False,
         speculate: bool = False,
         log: Optional[Log] = None) -> FuzzReport:
    """Run a differential fuzzing campaign of ``budget`` random traces.

    ``backends`` defaults to every registered backend.  With
    ``time_budget`` (seconds) the campaign stops early once exceeded —
    the CI smoke knob.  Failures are minimized and, when
    ``artifacts_dir`` is set, written there as repro files.

    With ``chaos=True`` each trace replays under an injected fault plan
    of ``chaos_faults`` events (plan seed = the scenario's own seed, so
    the campaign seed reproduces both the trace *and* its faults).  The
    oracle stays fault-free; the diff proves recovery preserved the
    delivered stream exactly.  Chaos failures skip shrinking.

    With ``corrupt=True`` the fault plan draws from
    :data:`~repro.faults.corruption.CORRUPTION_KINDS` instead —
    snapshot byte flips, journal payload mutations, shard desyncs — and
    each trace additionally runs a daemon frame-mutation trial
    (:mod:`repro.fuzz.frames`).  The invariant tightens to "loud
    failure or correct answers, never silently wrong".  Like chaos
    failures, corruption failures skip shrinking.

    With ``speculate=True`` each trace additionally replays through
    :func:`speculative_trial` on every chosen backend — random chunks
    applied to copy-on-write speculative children with randomized
    commit/discard interleavings — and the committed stream must match
    both the child's preview and a never-speculated straight replay.
    Divergences land in ``spec_problems`` (no shrinking: the chunking
    is seed-derived and the seed pair reproduces it).
    """
    import shutil
    import tempfile

    from repro.api import available_backends

    if chaos and corrupt:
        raise ValueError("chaos and corrupt modes are mutually exclusive")
    if speculate and (chaos or corrupt):
        raise ValueError("speculate mode is incompatible with "
                         "chaos/corrupt fault injection")
    if chaos:
        from repro.faults.chaos import ChaosPlan
        from repro.scenarios.runner import run_chaos_scenario
    if corrupt:
        from repro.faults.corruption import corruption_plan
        from repro.fuzz.frames import frame_mutation_trial
        from repro.scenarios.runner import run_corruption_scenario

    chosen = sorted(backends) if backends is not None \
        else list(available_backends())
    rng = random.Random(seed)
    report = FuzzReport(budget=budget, chaos=chaos, corrupt=corrupt,
                        speculate=speculate)
    emit = log or (lambda line: None)
    start = time.perf_counter()
    if artifacts_dir:
        os.makedirs(artifacts_dir, exist_ok=True)
    for index in range(budget):
        if time_budget is not None \
                and time.perf_counter() - start > time_budget:
            report.stopped_early = True
            emit(f"time budget {time_budget:.0f}s hit after "
                 f"{report.attempted} traces")
            break
        scenario = random_scenario(rng, families=families, width=width)
        report.attempted += 1
        plan = None
        if chaos:
            plan = ChaosPlan.random(scenario.seed, scenario.num_ops,
                                    faults=chaos_faults)
            work_dir = tempfile.mkdtemp(prefix="deltanet-chaos-")
            try:
                scenario_report = run_chaos_scenario(scenario, chosen,
                                                     plan, work_dir)
            finally:
                shutil.rmtree(work_dir, ignore_errors=True)
        elif corrupt:
            plan = corruption_plan(scenario.seed, scenario.num_ops,
                                   faults=chaos_faults)
            work_dir = tempfile.mkdtemp(prefix="deltanet-corrupt-")
            try:
                scenario_report = run_corruption_scenario(
                    scenario, chosen, plan, work_dir)
                # The third corruption surface: the daemon's own wire
                # protocol, driven in-process against one backend.
                frame_backend = ("deltanet" if "deltanet" in chosen
                                 else chosen[0])
                frame_dir = os.path.join(work_dir, "frames")
                report.frame_trials += 1
                problems = frame_mutation_trial(
                    scenario, frame_backend, frame_dir,
                    random.Random(scenario.seed ^ 0xF5A3E5))
                for problem in problems:
                    report.frame_problems.append(
                        f"{scenario.name} [{frame_backend}]: {problem}")
                    emit(f"[{index + 1}/{budget}] {scenario.name}: "
                         f"FRAME PROBLEM {problem}")
            finally:
                shutil.rmtree(work_dir, ignore_errors=True)
        else:
            scenario_report = run_scenario(scenario, chosen)
            if speculate:
                for backend in chosen:
                    report.spec_trials += 1
                    problems = speculative_trial(
                        scenario, backend,
                        random.Random(scenario.seed ^ 0x5BEC))
                    for problem in problems:
                        report.spec_problems.append(
                            f"{scenario.name}: {problem}")
                        emit(f"[{index + 1}/{budget}] {scenario.name}: "
                             f"SPECULATION PROBLEM {problem}")
        if scenario_report.ok:
            report.passed += 1
            if plan is not None:
                recoveries = sum((run.chaos or {}).get("recoveries", 0)
                                 for run in scenario_report.runs)
                emit(f"[{index + 1}/{budget}] {scenario.name}: "
                     f"{scenario.num_ops} ops, "
                     f"{scenario_report.oracle_violations} violations, "
                     f"all backends agree under {len(plan.events)} "
                     f"fault(s) ({recoveries} recoveries)")
            else:
                emit(f"[{index + 1}/{budget}] {scenario.name}: "
                     f"{scenario.num_ops} ops, "
                     f"{scenario_report.oracle_violations} violations, "
                     f"all backends agree")
            continue
        if plan is not None:
            # The fault schedule is keyed to op indices; shrinking the
            # trace would change which faults fire where.  Report the
            # full trace — the seed pair reproduces it exactly.
            emit(f"[{index + 1}/{budget}] {scenario.name}: DIVERGENCE "
                 f"under chaos plan seed={plan.seed}")
            diverging = sorted(
                {d.backend for d in scenario_report.divergences} |
                {run.backend for run in scenario_report.runs
                 if run.error is not None})
            failure = FuzzFailure(scenario=scenario, report=scenario_report,
                                  diverging=diverging,
                                  shrunk_ops=list(scenario.ops),
                                  chaos_plan=plan)
        else:
            emit(f"[{index + 1}/{budget}] {scenario.name}: DIVERGENCE — "
                 f"minimizing...")
            failure = minimize_failure(scenario, scenario_report,
                                       max_probes=shrink_probes)
        if artifacts_dir:
            save_failure_artifacts(failure, scenario_report, chosen,
                                   artifacts_dir)
        report.failures.append(failure)
        emit(failure.describe())
    report.elapsed = time.perf_counter() - start
    return report


def replay_repro(path: str,
                 backends: Optional[Iterable[str]] = None) -> ScenarioReport:
    """Re-run a saved repro file's differential check.

    ``backends`` defaults to the file's recorded backend list.
    """
    from repro.fuzz.reprofile import load_repro

    repro = load_repro(path)
    chosen = sorted(backends) if backends is not None else repro.backends
    return run_scenario(repro.scenario(), chosen)
