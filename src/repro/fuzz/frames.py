"""ndjson frame mutation against the streaming daemon's protocol.

The corruption fuzzer's third surface (after snapshot and journal
bytes): the daemon's own wire protocol.  A trace is driven through a
:class:`~repro.serve.StreamServer` line by line, with *guaranteed
invalid* frames interleaved — truncated JSON, byte-mutated requests that
no longer parse, unknown commands, requests missing required fields,
frames past ``max_line_bytes``.  Every mutant must be refused with an
``{"ok": false, ...}`` response and must not advance the session
sequence; every genuine frame must apply; and the violation stream the
genuine frames deliver must match the fault-free sweep oracle.

Mutants are *pre-validated*: a byte-mutated frame that still parses as
JSON might be a perfectly legal (but different) request, whose effects
would legitimately diverge from the oracle — only mutants proven
unparseable (or structurally invalid by construction) are sent, so any
accepted mutant or sequence drift is a real protocol bug, not fuzzer
noise.
"""

from __future__ import annotations

import json
import random
from typing import List

#: Per-trial cap on one request line — small, so the oversized-frame
#: path is cheap to exercise every trial.
TRIAL_MAX_LINE_BYTES = 65536


def _op_frame(op) -> str:
    """One trace op as its protocol request line."""
    if op.is_insert:
        rule = op.rule
        payload = {"rid": rule.rid, "lo": rule.lo, "hi": rule.hi,
                   "priority": rule.priority, "source": rule.source,
                   "action": rule.action.value}
        if rule.target is not None:
            payload["target"] = rule.target
        return json.dumps({"cmd": "insert", "rule": payload})
    return json.dumps({"cmd": "remove", "rid": op.rid})


def _mutate_unparseable(frame: str, rng: random.Random) -> str:
    """Byte-mutate ``frame`` until ``json.loads`` provably fails.

    Falls back to a truncation (always unparseable for object frames)
    if random mutation keeps accidentally producing valid JSON.
    """
    for _ in range(16):
        chars = list(frame)
        for _ in range(rng.randrange(1, 4)):
            position = rng.randrange(len(chars))
            chars[position] = chr(rng.randrange(32, 127))
        candidate = "".join(chars)
        try:
            json.loads(candidate)
        except ValueError:
            return candidate
    return frame[:max(1, len(frame) // 2)]


def _invalid_frames(frame: str, rng: random.Random) -> List[str]:
    """A sample of guaranteed-invalid variants of one genuine frame."""
    pool = [
        _mutate_unparseable(frame, rng),
        frame[:-1] if frame.endswith("}") else frame + "}",
        json.dumps({"cmd": f"bogus-{rng.randrange(1 << 16)}"}),
        json.dumps({"cmd": "insert", "rule": {"rid": 0}}),
        json.dumps({"cmd": "query", "what": "no-such-query"}),
        "x" * (TRIAL_MAX_LINE_BYTES + 64),
    ]
    return [pool[rng.randrange(len(pool))]]


def frame_mutation_trial(scenario, backend: str, work_dir: str,
                         rng: random.Random,
                         mutation_rate: float = 0.2) -> List[str]:
    """Drive ``scenario`` through a daemon over its line protocol with
    invalid frames interleaved; returns the list of problems found
    (empty = the protocol surface held).
    """
    from repro.scenarios.oracle import SweepOracle
    from repro.serve import StreamServer, _jsonable

    def canon(signature) -> str:
        # Protocol responses carry the JSON projection of a signature;
        # push the oracle's native signatures through the same
        # projection so both sides compare in one representation.
        return json.dumps(_jsonable(tuple(signature)), sort_keys=True)

    oracle = SweepOracle(scenario.property_specs, width=scenario.width)
    oracle_stream = [frozenset(canon(sig) for sig in batch)
                     for batch in oracle.stream(scenario.ops)]
    problems: List[str] = []
    server = StreamServer(work_dir, engine=backend, width=scenario.width,
                          properties=(), checkpoint_every=1 << 30,
                          max_line_bytes=TRIAL_MAX_LINE_BYTES)
    try:
        for spec in scenario.property_specs:
            response, _ = server.handle_line(json.dumps(
                {"cmd": "watch", "property": spec.name,
                 "args": dict(spec.options)}))
            if not response.get("ok"):
                problems.append(f"watch {spec.name} refused: {response}")
                return problems
        for index, op in enumerate(scenario.ops):
            frame = _op_frame(op)
            if rng.random() < mutation_rate:
                for mutant in _invalid_frames(frame, rng):
                    before = server.session.sequence
                    response, keep_going = server.handle_line(mutant)
                    if response.get("ok") is not False:
                        problems.append(
                            f"op {index}: invalid frame accepted: "
                            f"{mutant[:80]!r} -> {response}")
                    if server.session.sequence != before:
                        problems.append(
                            f"op {index}: invalid frame advanced the "
                            f"sequence {before} -> "
                            f"{server.session.sequence}")
                    if not keep_going:
                        problems.append(
                            f"op {index}: invalid frame closed the "
                            f"connection: {mutant[:80]!r}")
            response, _ = server.handle_line(frame)
            if not response.get("ok"):
                problems.append(f"op {index}: genuine frame refused: "
                                f"{response}")
                return problems
            delivered = frozenset(
                canon(item["signature"])
                for item in response.get("violations", ()))
            expected = oracle_stream[index]
            if delivered != expected:
                problems.append(
                    f"op {index}: delivered violations diverge from the "
                    f"oracle (missing {sorted(expected - delivered)}, "
                    f"unexpected {sorted(delivered - expected)})")
                return problems
    finally:
        server.close()
    return problems
