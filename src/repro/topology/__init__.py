"""Network topologies: the graph substrate under every dataset (§4.2).

The paper's evaluation uses the UC Berkeley campus network, four
Rocketfuel ISP topologies, the Airtel (AS 9498) topology from the
Internet Topology Zoo, and a 4-switch ring.  None of those files ship
offline, so :mod:`repro.topology.generators` synthesizes seeded graphs
with matching scale and style (see DESIGN.md, "Substitutions").
"""

from repro.topology.graph import Topology
from repro.topology.generators import (
    ring, line, star, grid, fat_tree, campus, isp_like, airtel, four_switch,
)

__all__ = [
    "Topology",
    "ring", "line", "star", "grid", "fat_tree", "campus", "isp_like",
    "airtel", "four_switch",
]
