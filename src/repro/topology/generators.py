"""Seeded topology generators matching the paper's evaluation networks.

Real topology files (Rocketfuel, UC Berkeley, Internet Topology Zoo) are
not available offline; these generators produce graphs of the same scale
and flavour (see DESIGN.md "Substitutions").  Every generator is
deterministic given its seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.topology.graph import Topology


def line(n: int) -> Topology:
    """A chain of ``n`` switches."""
    if n < 1:
        raise ValueError("need at least one node")
    topo = Topology(f"line-{n}")
    topo.add_node(0)
    for i in range(n - 1):
        topo.add_link(i, i + 1)
    return topo


def ring(n: int) -> Topology:
    """A ring of ``n`` switches (the paper's 4Switch uses ``ring(4)``)."""
    if n < 3:
        raise ValueError("a ring needs at least 3 nodes")
    topo = Topology(f"ring-{n}")
    for i in range(n):
        topo.add_link(i, (i + 1) % n)
    return topo


def star(n_leaves: int) -> Topology:
    """One hub connected to ``n_leaves`` leaves (hub is node 0)."""
    if n_leaves < 1:
        raise ValueError("need at least one leaf")
    topo = Topology(f"star-{n_leaves}")
    for leaf in range(1, n_leaves + 1):
        topo.add_link(0, leaf)
    return topo


def grid(width: int, height: int) -> Topology:
    """A ``width x height`` mesh; node ids are ``(x, y)`` tuples."""
    if width < 1 or height < 1:
        raise ValueError("grid dimensions must be positive")
    topo = Topology(f"grid-{width}x{height}")
    topo.add_node((0, 0))
    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                topo.add_link((x, y), (x + 1, y))
            if y + 1 < height:
                topo.add_link((x, y), (x, y + 1))
    return topo


def fat_tree(k: int) -> Topology:
    """A canonical k-ary fat-tree (k even): cores, aggs, and edges.

    Node ids are strings: ``c<i>``, ``a<pod>_<i>``, ``e<pod>_<i>``.
    """
    if k < 2 or k % 2:
        raise ValueError("fat-tree arity must be even and >= 2")
    topo = Topology(f"fattree-{k}")
    half = k // 2
    cores = [f"c{i}" for i in range(half * half)]
    for pod in range(k):
        aggs = [f"a{pod}_{i}" for i in range(half)]
        edges = [f"e{pod}_{i}" for i in range(half)]
        for agg in aggs:
            for edge in edges:
                topo.add_link(agg, edge)
        for i, agg in enumerate(aggs):
            for j in range(half):
                topo.add_link(agg, cores[i * half + j])
    return topo


def campus(seed: int = 7) -> Topology:
    """A Berkeley-like campus network: core mesh, distribution, access.

    23 nodes, matching Table 2's Berkeley row: a fully meshed 3-node
    core, 6 distribution routers dual-homed into the core, and 14 access
    switches dual-homed into the distribution layer.
    """
    rng = random.Random(seed)
    topo = Topology("campus")
    core = [f"core{i}" for i in range(3)]
    distribution = [f"dist{i}" for i in range(6)]
    access = [f"acc{i}" for i in range(14)]
    for i, u in enumerate(core):
        for v in core[i + 1:]:
            topo.add_link(u, v)
    for i, dist in enumerate(distribution):
        primary = core[i % len(core)]
        backup = core[(i + 1) % len(core)]
        topo.add_link(dist, primary)
        topo.add_link(dist, backup)
    for i, acc in enumerate(access):
        primary = distribution[i % len(distribution)]
        backup = distribution[rng.randrange(len(distribution))]
        topo.add_link(acc, primary)
        if backup != primary:
            topo.add_link(acc, backup)
    return topo


def isp_like(n_nodes: int, extra_links: int, seed: int = 11,
             name: str = "isp") -> Topology:
    """A Rocketfuel-style ISP backbone via preferential attachment.

    Starts from a small ring (ensuring connectivity), attaches each new
    node to an existing node chosen proportionally to degree (the
    heavy-tailed degree mix measured by Rocketfuel), then adds
    ``extra_links`` shortcut links between degree-biased endpoints.
    """
    if n_nodes < 4:
        raise ValueError("need at least 4 nodes")
    rng = random.Random(seed)
    topo = Topology(name)
    for i in range(3):
        topo.add_link(i, (i + 1) % 3)
    # Degree-weighted urn: node ids appear once per incident link.
    urn: List[int] = [0, 0, 1, 1, 2, 2]
    for node in range(3, n_nodes):
        anchor = rng.choice(urn)
        topo.add_link(node, anchor)
        urn.extend((node, anchor))
    added = 0
    attempts = 0
    while added < extra_links and attempts < extra_links * 20:
        attempts += 1
        u, v = rng.choice(urn), rng.choice(urn)
        if u != v and not topo.has_link(u, v):
            topo.add_link(u, v)
            urn.extend((u, v))
            added += 1
    return topo


_ROCKETFUEL_SHAPES: Dict[int, Tuple[int, int]] = {
    # AS -> (nodes, extra shortcut links); node counts from Table 2.
    1755: (87, 160),
    3257: (161, 420),
    6461: (138, 360),
    1239: (316, 900),  # the INET backbone (~300 routers, §4.2.1)
}


def rocketfuel(asn: int, seed: int = 23) -> Topology:
    """A synthetic stand-in for a Rocketfuel-measured AS topology."""
    if asn not in _ROCKETFUEL_SHAPES:
        raise ValueError(f"unknown Rocketfuel AS {asn}; "
                         f"choose from {sorted(_ROCKETFUEL_SHAPES)}")
    nodes, extra = _ROCKETFUEL_SHAPES[asn]
    return isp_like(nodes, extra, seed=seed + asn, name=f"rf-{asn}")


def airtel() -> Topology:
    """A 16-switch Airtel-like (AS 9498) WAN: a ring with cross-links.

    The Internet Topology Zoo's Airtel graph is a sparse national WAN;
    this stand-in has 16 switches in a ring plus 10 chords, matching the
    emulated network of §4.2.2 (sixteen Open vSwitches).
    """
    topo = Topology("airtel")
    n = 16
    for i in range(n):
        topo.add_link(i, (i + 1) % n)
    for u, v in [(0, 5), (0, 8), (2, 10), (3, 12), (4, 9),
                 (6, 13), (7, 14), (1, 11), (5, 12), (9, 15)]:
        topo.add_link(u, v)
    return topo


def four_switch() -> Topology:
    """The paper's 4-switch ring workaround topology (§4.2.2)."""
    topo = ring(4)
    topo.name = "4switch"
    return topo
