"""A minimal directed-graph model for network topologies.

Nodes are switch/router identifiers (ints or strings).  Links are stored
as directed edges; :meth:`Topology.add_link` adds both directions by
default, since all of the paper's networks are bidirectional.

Shortest paths use breadth-first search (uniform link weights, as in the
paper's shortest-path rule generation, §4.2.1) and support excluding
failed links — the primitive behind the SDN-IP reroute emulation and the
what-if experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

Edge = Tuple[object, object]


class Topology:
    """A directed graph with BFS shortest-path machinery."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.nodes: Set[object] = set()
        self._adjacency: Dict[object, Set[object]] = {}

    # -- construction ------------------------------------------------------------

    def add_node(self, node: object) -> None:
        self.nodes.add(node)
        self._adjacency.setdefault(node, set())

    def add_link(self, u: object, v: object, bidirectional: bool = True) -> None:
        if u == v:
            raise ValueError(f"self-loop {u}->{v} not allowed")
        self.add_node(u)
        self.add_node(v)
        self._adjacency[u].add(v)
        if bidirectional:
            self._adjacency[v].add(u)

    def remove_link(self, u: object, v: object, bidirectional: bool = True) -> None:
        self._adjacency[u].discard(v)
        if bidirectional:
            self._adjacency[v].discard(u)

    def has_link(self, u: object, v: object) -> bool:
        return v in self._adjacency.get(u, ())

    # -- accessors ------------------------------------------------------------------

    def neighbors(self, node: object) -> Set[object]:
        return self._adjacency.get(node, set())

    def degree(self, node: object) -> int:
        return len(self._adjacency.get(node, ()))

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_links(self) -> int:
        """Number of *directed* links."""
        return sum(len(out) for out in self._adjacency.values())

    def links(self) -> Iterator[Edge]:
        """All directed links."""
        for u, out in self._adjacency.items():
            for v in out:
                yield (u, v)

    def undirected_links(self) -> List[Edge]:
        """Each bidirectional link once, as a sorted-by-repr pair."""
        seen: Set[FrozenSet[object]] = set()
        out: List[Edge] = []
        for u, v in self.links():
            key = frozenset((u, v))
            if key not in seen:
                seen.add(key)
                out.append((u, v))
        return out

    def is_connected(self) -> bool:
        if not self.nodes:
            return True
        start = next(iter(self.nodes))
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in self._adjacency.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return len(seen) == len(self.nodes)

    # -- shortest paths ----------------------------------------------------------------

    def shortest_path_tree(self, destination: object,
                           avoid_links: Iterable[Edge] = ()) -> Dict[object, object]:
        """BFS next-hop map toward ``destination``.

        Returns ``node -> next hop on a shortest path to destination``
        for every node that can reach it (the destination itself is
        omitted).  ``avoid_links`` are directed edges treated as failed
        in *both* directions.
        """
        blocked: Set[FrozenSet[object]] = {frozenset(e) for e in avoid_links}
        next_hop: Dict[object, object] = {}
        visited = {destination}
        queue = deque([destination])
        # BFS from the destination over reverse edges; since links are
        # symmetric, forward adjacency doubles as reverse adjacency.
        while queue:
            node = queue.popleft()
            for neighbor in sorted(self._adjacency.get(node, ()), key=repr):
                if neighbor in visited or frozenset((neighbor, node)) in blocked:
                    continue
                visited.add(neighbor)
                next_hop[neighbor] = node
                queue.append(neighbor)
        return next_hop

    def shortest_path(self, src: object, dst: object,
                      avoid_links: Iterable[Edge] = ()) -> Optional[List[object]]:
        """One shortest path from ``src`` to ``dst``, or None."""
        if src == dst:
            return [src]
        tree = self.shortest_path_tree(dst, avoid_links=avoid_links)
        if src not in tree:
            return None
        path = [src]
        while path[-1] != dst:
            path.append(tree[path[-1]])
        return path

    def diameter(self) -> int:
        """Longest shortest path over all reachable pairs (small graphs)."""
        best = 0
        for src in self.nodes:
            depth = {src: 0}
            queue = deque([src])
            while queue:
                node = queue.popleft()
                for neighbor in self._adjacency.get(node, ()):
                    if neighbor not in depth:
                        depth[neighbor] = depth[node] + 1
                        queue.append(neighbor)
            if depth:
                best = max(best, max(depth.values()))
        return best

    def copy(self) -> "Topology":
        out = Topology(self.name)
        for u, v in self.links():
            out.add_link(u, v, bidirectional=False)
        for node in self.nodes:
            out.add_node(node)
        return out

    def __repr__(self) -> str:
        return (f"Topology({self.name!r}, nodes={self.num_nodes}, "
                f"directed_links={self.num_links})")
