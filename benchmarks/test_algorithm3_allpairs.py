"""Experiment E10 — Algorithm 3: all-pairs reachability of all atoms.

Runs the atom-labelled Floyd–Warshall closure on insert-only data planes
and cross-checks it against the per-atom BFS reference.  The paper
positions this O(K |V|^3) computation for pre-deployment, Datalog-style
analysis (§3.3) — not per-update checking — so the benchmark reports
total sweep time per dataset.

Shape targets:
  * Algorithm 3 equals the independent reference closure,
  * loops on the diagonal match the exhaustive loop checker's verdict.
"""

import time

import pytest

from repro.analysis.tables import render_table
from repro.checkers.allpairs import (
    all_pairs_reachability, all_pairs_reference, loops_from_closure,
)
from repro.checkers.loops import find_forwarding_loops

from benchmarks.common import dataset, insert_only_deltanet, print_report

_NAMES = ("Airtel1", "4Switch", "Berkeley")


def test_algorithm3_report():
    rows = []
    for name in _NAMES:
        deltanet = insert_only_deltanet(name).deltanet
        nodes = [n for n in deltanet.nodes if n != "__drop__"]
        start = time.perf_counter()
        closure = all_pairs_reachability(deltanet)
        elapsed = time.perf_counter() - start
        rows.append((name, len(nodes), deltanet.num_atoms, len(closure),
                     f"{elapsed * 1e3:.1f}"))
    print_report(render_table(
        ("Data plane", "Nodes", "Atoms", "Reachable pairs", "Time ms"),
        rows, title="Algorithm 3 — all-pairs reachability of all atoms"))
    assert rows


@pytest.mark.parametrize("name", _NAMES)
def test_matches_reference_closure(name):
    deltanet = insert_only_deltanet(name).deltanet
    assert all_pairs_reachability(deltanet) == all_pairs_reference(deltanet)


@pytest.mark.parametrize("name", _NAMES)
def test_diagonal_agrees_with_loop_checker(name):
    deltanet = insert_only_deltanet(name).deltanet
    closure_loops = loops_from_closure(all_pairs_reachability(deltanet))
    sweep_loops = find_forwarding_loops(deltanet)
    assert bool(closure_loops) == bool(sweep_loops)


def test_benchmark_algorithm3(benchmark):
    deltanet = insert_only_deltanet("4Switch").deltanet
    closure = benchmark(lambda: all_pairs_reachability(deltanet))
    assert closure is not None
