"""Ablation A6 — the §6 multi-range blow-up, measured.

The naive two-field Delta-net's pair-atom count grows toward the product
of the per-axis atom counts; the paper proposes the rules' "overlapping
degree" as the lever for future work.  Shape targets:

  * pair atoms >> per-axis atoms on overlapping workloads,
  * the single-field verifier over the same dst-ranges stays linear,
  * overlap degree correlates with the blow-up.
"""

import random

import pytest

from repro.analysis.tables import render_table
from repro.core.deltanet import DeltaNet
from repro.core.multirange import Rule2D, TwoFieldDeltaNet
from repro.core.rules import Link, Rule

from benchmarks.common import BENCH_SCALE, print_report

_COUNTS = tuple(max(10, int(n * BENCH_SCALE)) for n in (20, 40, 80))
_CACHE = {}


def _rules(count, overlap="high"):
    rng = random.Random(count * 7)
    rules = []
    for rid in range(count):
        if overlap == "high":
            lo0 = rng.randrange(0, 64)
            hi0 = rng.randrange(lo0 + 32, 256) if lo0 + 32 < 256 else 256
            lo1 = rng.randrange(0, 64)
            hi1 = rng.randrange(lo1 + 32, 256) if lo1 + 32 < 256 else 256
        else:  # disjoint-ish slices
            slot = rid % 16
            lo0, hi0 = slot * 16, slot * 16 + 8
            lo1, hi1 = slot * 16, slot * 16 + 8
        rules.append(Rule2D(rid, (lo0, hi0), (lo1, hi1), rid,
                            Link(f"s{rid % 4}", f"s{(rid + 1) % 4}")))
    return rules


def _measure(count, overlap="high"):
    key = (count, overlap)
    if key not in _CACHE:
        net2 = TwoFieldDeltaNet(widths=(8, 8))
        net1 = DeltaNet(width=8)
        for rule in _rules(count, overlap):
            net2.insert_rule(rule)
            lo, hi = rule.ranges[1]
            net1.insert_rule(Rule.forward(rule.rid, lo, hi, rule.priority,
                                          rule.source, rule.link.target))
        _CACHE[key] = (net2, net1)
    return _CACHE[key]


def test_ablation_multirange_report():
    rows = []
    for count in _COUNTS:
        net2, net1 = _measure(count)
        atoms0, atoms1 = net2.num_axis_atoms
        rows.append((count, atoms0, atoms1, net2.num_pair_atoms,
                     net1.num_atoms, f"{net2.overlap_degree():.1f}"))
    print_report(render_table(
        ("Rules", "Axis-0 atoms", "Axis-1 atoms", "Pair atoms",
         "1-field atoms", "Overlap degree"),
        rows, title="Ablation — naive 2-field cross-product growth (§6)"))
    assert rows


@pytest.mark.parametrize("count", _COUNTS)
def test_pair_atoms_exceed_axis_atoms(count):
    net2, _net1 = _measure(count)
    atoms0, atoms1 = net2.num_axis_atoms
    assert net2.num_pair_atoms > max(atoms0, atoms1)


def test_growth_is_superlinear_vs_single_field():
    small, large = _COUNTS[0], _COUNTS[-1]
    net2_small, net1_small = _measure(small)
    net2_large, net1_large = _measure(large)
    pair_growth = net2_large.num_pair_atoms / max(net2_small.num_pair_atoms, 1)
    single_growth = net1_large.num_atoms / max(net1_small.num_atoms, 1)
    assert pair_growth > single_growth


def test_low_overlap_degree_means_small_blowup():
    high, _ = _measure(_COUNTS[0], overlap="high")
    low, _ = _measure(_COUNTS[0], overlap="low")
    assert low.overlap_degree() < high.overlap_degree()
    atoms0, atoms1 = low.num_axis_atoms
    # With near-disjoint rules the pair count stays near the axis counts.
    assert low.num_pair_atoms <= atoms0 + atoms1 + len(low.rules)
