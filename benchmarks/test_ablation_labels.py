"""Ablation A1b — label representation: hash sets vs int bitmasks.

DESIGN.md calls out the two-representation choice: mutable sets for the
incremental add/discard pattern of Algorithms 1/2, int bitmasks for the
bulk unions/intersections of Algorithm 3 and what-if queries.  This
ablation quantifies both directions on a real data plane.

Shape targets:
  * single-atom updates: sets are not slower than rebuild-the-bitmask,
  * bulk pairwise intersections: bitmasks beat sets.
"""

import time

import pytest

from repro.analysis.tables import render_table
from repro.core.atomset import atoms_to_bitmask

from benchmarks.common import insert_only_deltanet, print_report


def _labels(name="Airtel1"):
    deltanet = insert_only_deltanet(name).deltanet
    labels = [set(atoms) for atoms in deltanet.label.values() if atoms]
    masks = [atoms_to_bitmask(atoms) for atoms in labels]
    return labels, masks


def test_bulk_intersections_favor_bitmasks():
    labels, masks = _labels()
    pairs = [(i, j) for i in range(len(labels))
             for j in range(i + 1, min(i + 30, len(labels)))]

    start = time.perf_counter()
    set_hits = sum(1 for i, j in pairs if labels[i] & labels[j])
    set_time = time.perf_counter() - start

    start = time.perf_counter()
    mask_hits = sum(1 for i, j in pairs if masks[i] & masks[j])
    mask_time = time.perf_counter() - start

    print_report(render_table(
        ("Representation", "Pairwise intersections", "Non-empty", "Time ms"),
        [("set[int]", len(pairs), set_hits, f"{set_time * 1e3:.2f}"),
         ("int bitmask", len(pairs), mask_hits, f"{mask_time * 1e3:.2f}")],
        title="Ablation — label representation (bulk ops)"))
    assert set_hits == mask_hits
    assert mask_time <= set_time * 1.5  # bitmasks competitive-to-better


def test_incremental_updates_favor_sets():
    """Adding/removing one atom: O(1) set ops vs O(K/64) big-int ops."""
    labels, masks = _labels()
    atoms = sorted(set().union(*labels))[:200]

    start = time.perf_counter()
    bucket = set(labels[0])
    for _round in range(50):
        for atom in atoms:
            bucket.add(atom)
            bucket.discard(atom)
    set_time = time.perf_counter() - start

    start = time.perf_counter()
    mask = masks[0]
    for _round in range(50):
        for atom in atoms:
            mask |= (1 << atom)
            mask &= ~(1 << atom)
    mask_time = time.perf_counter() - start

    print_report(render_table(
        ("Representation", "Single-atom updates", "Time ms"),
        [("set[int]", 50 * len(atoms) * 2, f"{set_time * 1e3:.2f}"),
         ("int bitmask", 50 * len(atoms) * 2, f"{mask_time * 1e3:.2f}")],
        title="Ablation — label representation (incremental ops)"))
    # Sets must not be dramatically worse; typically they win outright.
    assert set_time <= mask_time * 2


def test_benchmark_bitmask_conversion(benchmark):
    labels, _masks = _labels()
    masks = benchmark(lambda: [atoms_to_bitmask(l) for l in labels])
    assert len(masks) == len(labels)
