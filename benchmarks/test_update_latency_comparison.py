"""Experiment: the headline §4.3.1 claim — Delta-net vs Veriflow-RI on
per-update checking.

The paper: "Delta-net checks a rule insertion or removal in
approximately 40 microseconds on average, a more than 10x improvement
over the state-of-the-art" and "only approximately 4x faster ... on the
Airtel data set" (the gap widens with dataset size).

Both engines are the *same* code path now — a
:class:`repro.api.VerificationSession` with a ``LoopProperty``
subscription, selected by registry name — so the comparison measures the
verifiers, not the harness.  A cross-backend smoke additionally replays
one workload through all five registered backends and checks they agree
on the loop verdict.

Shape targets:
  * Delta-net's mean per-update time beats Veriflow-RI's on every
    compared dataset,
  * the speedup does not shrink as the workload grows.
"""

import pytest

from repro.analysis.tables import render_table
from repro.api import available_backends

from benchmarks.common import (
    BASELINE_DATASET_NAMES, dataset, microseconds, print_report,
    session_replay,
)


def test_headline_comparison_report():
    rows = []
    for name in BASELINE_DATASET_NAMES:
        _d_engine, d_result = session_replay(name, "deltanet")
        _v_engine, v_result = session_replay(name, "veriflow")
        d_mean = d_result.summary()["mean"]
        v_mean = v_result.summary()["mean"]
        rows.append((
            name, dataset(name).num_ops,
            f"{microseconds(d_mean):.1f}",
            f"{microseconds(v_mean):.1f}",
            f"{v_mean / max(d_mean, 1e-12):.1f}x",
        ))
    print_report(render_table(
        ("Data set", "Ops", "Delta-net us/op", "Veriflow-RI us/op",
         "speedup"),
        rows,
        title="Rule-update checking: Delta-net vs Veriflow-RI "
              "(paper: >10x on large sets, ~4x on Airtel)"))
    assert rows


@pytest.mark.parametrize("name", BASELINE_DATASET_NAMES)
def test_deltanet_faster_per_update(name):
    _d_engine, d_result = session_replay(name, "deltanet")
    _v_engine, v_result = session_replay(name, "veriflow")
    d_mean = d_result.summary()["mean"]
    v_mean = v_result.summary()["mean"]
    assert d_mean < v_mean, (
        f"{name}: Delta-net mean {d_mean:.2e}s should beat "
        f"Veriflow-RI mean {v_mean:.2e}s")


def test_loop_verdicts_agree():
    for name in BASELINE_DATASET_NAMES:
        _d, d_result = session_replay(name, "deltanet")
        _v, v_result = session_replay(name, "veriflow")
        assert (d_result.loops_found > 0) == (v_result.loops_found > 0), name


@pytest.mark.parametrize("backend", sorted(available_backends()))
def test_all_backends_replay_uniformly(backend):
    """Any registered backend replays the same workload through the one
    session code path (the quadratic baselines on a truncated prefix)."""
    max_ops = 60 if backend in ("apv", "netplumber") else None
    engine, result = session_replay("4Switch", backend, max_ops=max_ops)
    expected = len(dataset("4Switch").ops) if max_ops is None else max_ops
    assert result.num_ops == expected
    assert engine.session.num_rules > 0


def test_cross_backend_loop_verdicts_agree():
    """All five backends agree whether the 4Switch campaign ever loops
    (the incremental engines on the full run; prefixes for the rest)."""
    verdicts = {}
    for backend in available_backends():
        max_ops = 60 if backend in ("apv", "netplumber") else None
        _engine, result = session_replay("4Switch", backend, max_ops=max_ops)
        verdicts[backend] = result.loops_found > 0
    assert verdicts["deltanet"] == verdicts["veriflow"] == verdicts["sharded"]


@pytest.mark.parametrize("engine_name", ["deltanet", "veriflow"])
def test_benchmark_per_update_check(benchmark, engine_name):
    """pytest-benchmark micro-comparison on the same small workload."""
    from repro.replay.engine import make_engine, replay

    ops = dataset("4Switch").ops

    def run():
        return replay(ops, make_engine(engine_name))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.num_ops == len(ops)
