"""Experiment: the headline §4.3.1 claim — Delta-net vs Veriflow-RI on
per-update checking.

The paper: "Delta-net checks a rule insertion or removal in
approximately 40 microseconds on average, a more than 10x improvement
over the state-of-the-art" and "only approximately 4x faster ... on the
Airtel data set" (the gap widens with dataset size).

Shape targets:
  * Delta-net's mean per-update time beats Veriflow-RI's on every
    compared dataset,
  * the speedup does not shrink as the workload grows.
"""

import pytest

from repro.analysis.tables import render_table

from benchmarks.common import (
    BASELINE_DATASET_NAMES, dataset, deltanet_replay, microseconds,
    print_report, veriflow_replay,
)


def test_headline_comparison_report():
    rows = []
    for name in BASELINE_DATASET_NAMES:
        _d_engine, d_result = deltanet_replay(name)
        _v_engine, v_result = veriflow_replay(name)
        d_mean = d_result.summary()["mean"]
        v_mean = v_result.summary()["mean"]
        rows.append((
            name, dataset(name).num_ops,
            f"{microseconds(d_mean):.1f}",
            f"{microseconds(v_mean):.1f}",
            f"{v_mean / max(d_mean, 1e-12):.1f}x",
        ))
    print_report(render_table(
        ("Data set", "Ops", "Delta-net us/op", "Veriflow-RI us/op",
         "speedup"),
        rows,
        title="Rule-update checking: Delta-net vs Veriflow-RI "
              "(paper: >10x on large sets, ~4x on Airtel)"))
    assert rows


@pytest.mark.parametrize("name", BASELINE_DATASET_NAMES)
def test_deltanet_faster_per_update(name):
    _d_engine, d_result = deltanet_replay(name)
    _v_engine, v_result = veriflow_replay(name)
    d_mean = d_result.summary()["mean"]
    v_mean = v_result.summary()["mean"]
    assert d_mean < v_mean, (
        f"{name}: Delta-net mean {d_mean:.2e}s should beat "
        f"Veriflow-RI mean {v_mean:.2e}s")


def test_loop_verdicts_agree():
    for name in BASELINE_DATASET_NAMES:
        _d, d_result = deltanet_replay(name)
        _v, v_result = veriflow_replay(name)
        assert (d_result.loops_found > 0) == (v_result.loops_found > 0), name


@pytest.mark.parametrize("engine_name", ["deltanet", "veriflow"])
def test_benchmark_per_update_check(benchmark, engine_name):
    """pytest-benchmark micro-comparison on the same small workload."""
    from repro.replay.engine import DeltaNetEngine, VeriflowEngine, replay

    ops = dataset("4Switch").ops

    def run():
        engine = (DeltaNetEngine() if engine_name == "deltanet"
                  else VeriflowEngine())
        return replay(ops, engine)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.num_ops == len(ops)
