#!/usr/bin/env python3
"""Regenerate every paper artifact and write a markdown report.

Runs the full experiment battery (Tables 2-5, Figure 8, Appendix C,
Algorithm 3, plus the repository's ablations) at the configured scale
and writes ``experiment_report.md``; EXPERIMENTS.md records a snapshot
of these numbers with commentary.

Usage:  python benchmarks/run_experiments.py [output.md]
        REPRO_BENCH_SCALE=4 python benchmarks/run_experiments.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.analysis.cdf import ascii_cdf
from repro.analysis.memory import deep_size, format_bytes
from repro.analysis.report import ExperimentReport
from repro.analysis.stats import percentile
from repro.checkers.whatif import link_failure_impact

from benchmarks.common import (
    BASELINE_DATASET_NAMES, BENCH_SCALE, DATASET_NAMES, dataset,
    deltanet_replay, insert_only_deltanet, insert_only_veriflow,
    microseconds, veriflow_replay,
)
from repro.datasets.builders import PAPER_TABLE2


def table2(report: ExperimentReport) -> None:
    rows = []
    for name in DATASET_NAMES:
        built = dataset(name)
        paper_nodes, paper_links, paper_ops = PAPER_TABLE2[name]
        rows.append((name, built.num_nodes, paper_nodes, built.num_links,
                     paper_links, built.num_ops, f"{paper_ops:.3g}"))
    report.section("Table 2 — data sets",
                   "Regenerated at laptop scale "
                   f"(REPRO_BENCH_SCALE={BENCH_SCALE}).")
    report.table(("Data set", "Nodes", "paper", "Links", "paper",
                  "Operations", "paper"), rows)


def table3(report: ExperimentReport) -> None:
    rows = []
    all_atoms_below_rules = True
    for name in DATASET_NAMES:
        engine, result = deltanet_replay(name)
        summary = result.summary()
        rules = dataset(name).num_inserts
        all_atoms_below_rules &= engine.num_atoms < rules or rules < 50
        rows.append((name, engine.num_atoms, rules,
                     f"{microseconds(summary['median']):.1f}",
                     f"{microseconds(summary['mean']):.1f}",
                     f"{summary['frac_below_threshold'] * 100:.1f}%"))
    report.section("Table 3 — checking rule insertions and removals",
                   "Per-operation time includes building the delta-graph "
                   "and checking forwarding loops (paper: medians 1-5 us, "
                   "averages 3-41 us in C++ on a 3.47 GHz Xeon).")
    report.table(("Data set", "Atoms", "Rules", "Median us", "Average us",
                  "< 250 us"), rows)
    report.shape_check("atoms << rules on every dataset",
                       all_atoms_below_rules)
    report.end_checks()


def figure8(report: ExperimentReport) -> None:
    series = {name: deltanet_replay(name)[1].times for name in DATASET_NAMES}
    report.section("Figure 8 — CDF of per-operation processing time")
    report.code_block(ascii_cdf(series, unit="seconds/op"))
    p90 = {name: percentile(times, 90) for name, times in series.items()}
    harder = [n for n, v in p90.items() if v > p90["INET"]]
    report.shape_check(
        "INET-style dataset among the heaviest tails", len(harder) <= 3)
    report.end_checks()


def headline(report: ExperimentReport) -> None:
    rows = []
    always_faster = True
    for name in BASELINE_DATASET_NAMES:
        _d, d_result = deltanet_replay(name)
        _v, v_result = veriflow_replay(name)
        d_mean = d_result.summary()["mean"]
        v_mean = v_result.summary()["mean"]
        always_faster &= d_mean < v_mean
        rows.append((name, f"{microseconds(d_mean):.1f}",
                     f"{microseconds(v_mean):.1f}",
                     f"{v_mean / d_mean:.1f}x"))
    report.section("§4.3.1 headline — Delta-net vs Veriflow-RI per update",
                   "Paper: >10x on the large datasets, ~4x on Airtel.")
    report.table(("Data set", "Delta-net us/op", "Veriflow-RI us/op",
                  "speedup"), rows)
    report.shape_check("Delta-net faster on every compared dataset",
                       always_faster)
    report.end_checks()


def table4(report: ExperimentReport) -> None:
    rows = []
    always_faster = True
    for name in BASELINE_DATASET_NAMES:
        deltanet = insert_only_deltanet(name).deltanet
        veriflow = insert_only_veriflow(name).veriflow
        links = list(deltanet.label)
        start = time.perf_counter()
        for link in links:
            link_failure_impact(deltanet, link, check_loops=False)
        delta_avg = (time.perf_counter() - start) / len(links)
        start = time.perf_counter()
        for link in links:
            link_failure_impact(deltanet, link, check_loops=True)
        loops_avg = (time.perf_counter() - start) / len(links)
        start = time.perf_counter()
        for link in links:
            veriflow.whatif_link_failure(link)
        veriflow_avg = (time.perf_counter() - start) / len(links)
        always_faster &= delta_avg < veriflow_avg
        rows.append((name, len(links), f"{veriflow_avg * 1e3:.3f}",
                     f"{delta_avg * 1e3:.3f}", f"{loops_avg * 1e3:.3f}",
                     f"{veriflow_avg / delta_avg:.1f}x"))
    report.section('Table 4 — "what if" link-failure queries',
                   "Average per-query time over all links of the "
                   "insert-only data plane (paper: 10x to several orders "
                   "of magnitude).")
    report.table(("Data plane", "Queries", "Veriflow-RI ms", "Delta-net ms",
                  "+Loops ms", "speedup"), rows)
    report.shape_check("Delta-net faster on every data plane", always_faster)
    report.end_checks()


def table5(report: ExperimentReport) -> None:
    rows = []
    always_smaller = True
    for name in BASELINE_DATASET_NAMES:
        deltanet_bytes = deep_size(insert_only_deltanet(name).deltanet)
        veriflow_bytes = deep_size(insert_only_veriflow(name).veriflow)
        always_smaller &= veriflow_bytes < deltanet_bytes
        rows.append((name, format_bytes(veriflow_bytes),
                     format_bytes(deltanet_bytes),
                     f"{deltanet_bytes / veriflow_bytes:.1f}x"))
    report.section("Table 5 — memory usage",
                   "Deep size of each verifier's state (paper: Delta-net "
                   "5-7x larger than Veriflow-RI).")
    report.table(("Data set", "Veriflow-RI", "Delta-net", "ratio"), rows)
    report.shape_check("Veriflow-RI smaller on every dataset", always_smaller)
    report.end_checks()


def update_latency(report: ExperimentReport) -> None:
    """Repo benchmark: per-update pipeline throughput across engines.

    Also (re)writes the machine-readable ``BENCH_update_latency.json``
    consumed by ``benchmarks/perf_gate.py check`` — the perf-regression
    baseline.
    """
    import json
    import os.path

    from benchmarks import perf_gate

    full_scale = BENCH_SCALE >= 1.0
    sizes = [10000, 50000] if full_scale else [10000]
    document = perf_gate.run_benchmark(sizes)
    baseline_path = perf_gate.DEFAULT_BASELINE
    regressions = []
    if os.path.exists(baseline_path):
        regressions = perf_gate.compare_to_baseline(
            document, baseline_path, tolerance=0.30)
    if full_scale and not regressions:
        # Refresh the committed baseline only from a clean full-matrix
        # run: a reduced-scale pass would drop the 50k entries, and a
        # regressed run must never re-baseline itself past the CI gate
        # (use `perf_gate.py run` explicitly to accept a slowdown).
        with open(baseline_path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        note = f"baseline refreshed at {baseline_path}."
    elif regressions:
        note = (f"REGRESSION vs committed baseline "
                f"({', '.join(regressions)}) — baseline left untouched.")
    else:
        note = ("reduced REPRO_BENCH_SCALE — committed baseline left "
                "untouched.")
    rows = []
    for key, entry in sorted(document["results"].items()):
        rows.append((key, f"{entry['ops_per_sec']:,.0f}",
                     f"{entry['p50_us']:.1f}", f"{entry['p95_us']:.1f}",
                     f"{entry['p99_us']:.1f}", entry["atoms"],
                     f"{entry['peak_rss_kb'] / 1024:.0f}"))
    report.section("Update latency — batched / sharded / parallel engines",
                   "Full per-update pipeline (rule op + incremental loop "
                   f"check); {note}")
    report.table(("Engine@rules", "ops/s", "p50 us", "p95 us", "p99 us",
                  "Atoms", "RSS MiB"), rows)
    speedups = document.get("speedups", {})
    for key, ratio in sorted(speedups.items()):
        report.shape_check(
            f"batched Delta-net >= {perf_gate.TARGET_BATCH_SPEEDUP}x "
            f"sequential ({key}: {ratio}x)",
            ratio >= perf_gate.TARGET_BATCH_SPEEDUP)
    report.shape_check("no regression vs committed perf baseline",
                       not regressions)
    report.end_checks()


def check_latency(report: ExperimentReport) -> None:
    """Repo benchmark: per-update verify throughput, index vs sweep.

    Also (re)writes the machine-readable ``BENCH_check_latency.json``
    consumed by ``perf_gate.py check --suite check_latency`` — same
    refresh discipline as :func:`update_latency`: only a clean
    full-scale run may re-baseline.
    """
    import json
    import os.path

    from benchmarks import perf_gate

    full_scale = BENCH_SCALE >= 1.0
    sizes = [10000, 50000] if full_scale else [10000]
    document = perf_gate.run_check_benchmark(sizes)
    baseline_path = perf_gate.CHECK_BASELINE
    regressions = []
    if os.path.exists(baseline_path):
        regressions = perf_gate.compare_check_to_baseline(
            document, baseline_path, tolerance=0.30)
    if full_scale and not regressions:
        with open(baseline_path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        note = f"baseline refreshed at {baseline_path}."
    elif regressions:
        note = (f"REGRESSION vs committed baseline "
                f"({', '.join(regressions)}) — baseline left untouched.")
    else:
        note = ("reduced REPRO_BENCH_SCALE — committed baseline left "
                "untouched.")
    rows = []
    for key, entry in sorted(document["results"].items()):
        rows.append((key, f"{entry['ops_per_sec']:,.0f}",
                     f"{entry['p50_us']:.1f}", f"{entry['p99_us']:.1f}",
                     entry["label_runs"], entry["label_atoms"],
                     f"{entry['label_bytes_runs'] / 1024:.0f}",
                     f"{entry['label_bytes_sets'] / 1024:.0f}"))
    report.section("Check latency — forwarding index vs sweep checker",
                   "Per-update verify pipeline (rule op + loop check of "
                   f"its delta) over a {perf_gate.CHECK_WINDOW}-op window "
                   f"at scale; {note}")
    report.table(("Checker@rules", "ops/s", "p50 us", "p99 us",
                  "Label runs", "Label atoms", "Runs KiB", "Sets KiB"),
                 rows)
    for key, ratio in sorted(document.get("speedups", {}).items()):
        report.shape_check(
            f"indexed checker >= {perf_gate.TARGET_CHECK_SPEEDUP}x sweep "
            f"({key}: {ratio}x)",
            ratio >= perf_gate.TARGET_CHECK_SPEEDUP)
    report.shape_check("no regression vs committed check baseline",
                       not regressions)
    report.end_checks()


def warm_start(report: ExperimentReport) -> None:
    """Repo benchmark: snapshot restore vs replay-from-zero recovery.

    Also (re)writes the machine-readable ``BENCH_warm_start.json``
    consumed by ``perf_gate.py check --suite warm_start`` — same refresh
    discipline as :func:`update_latency`: only a clean full-scale run
    may re-baseline.
    """
    import json
    import os.path

    from benchmarks import perf_gate

    full_scale = BENCH_SCALE >= 1.0
    sizes = [10000, 50000] if full_scale else [10000]
    document = perf_gate.run_warm_benchmark(sizes)
    baseline_path = perf_gate.WARM_BASELINE
    regressions = []
    if os.path.exists(baseline_path):
        regressions = perf_gate.compare_warm_to_baseline(
            document, baseline_path, tolerance=0.30)
    if full_scale and not regressions:
        with open(baseline_path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        note = f"baseline refreshed at {baseline_path}."
    elif regressions:
        note = (f"REGRESSION vs committed baseline "
                f"({', '.join(regressions)}) — baseline left untouched.")
    else:
        note = ("reduced REPRO_BENCH_SCALE — committed baseline left "
                "untouched.")
    rows = []
    for key, entry in sorted(document["results"].items()):
        rows.append((key, f"{entry['seconds']:.3f}",
                     f"{entry['ops_per_sec']:,.0f}", entry["rules"],
                     f"{entry.get('snapshot_bytes', 0) / 1024:,.0f}"))
    report.section("Warm start — snapshot restore vs cold replay",
                   "Recovering a 10k/50k-op session: repro.persist "
                   f"snapshot load vs checked replay from rule zero; {note}")
    report.table(("Recovery@rules", "Seconds", "ops/s", "Rules",
                  "Snapshot KiB"), rows)
    largest = max(sizes)
    ratio = document.get("speedups", {}).get(f"warm-vs-cold@{largest}", 0)
    # The >=5x floor is an acceptance-scale property (see
    # perf_gate.WARM_FLOOR_SIZE); reduced-scale runs only assert that
    # restoring beats replaying at all.
    target = (perf_gate.TARGET_WARM_SPEEDUP
              if largest >= perf_gate.WARM_FLOOR_SIZE else 1.0)
    report.shape_check(
        f"warm start >= {target}x cold replay at "
        f"{largest} rules ({ratio}x)",
        ratio >= target)
    report.shape_check("no regression vs committed warm-start baseline",
                       not regressions)
    report.end_checks()


def appendix_c(report: ExperimentReport) -> None:
    from repro.replay.engine import VeriflowEngine

    engine = VeriflowEngine(check_loops=False)
    counts = []
    for op in dataset("Berkeley").ops:
        if op.is_insert:
            counts.append(engine.veriflow.insert_rule(
                op.rule, check_loops=False).num_ecs)
        else:
            counts.append(engine.veriflow.remove_rule(
                op.rid, check_loops=False).num_ecs)
    report.section("Appendix C — affected ECs per update (Veriflow-RI)",
                   "Paper: single insertions affecting up to 319,681 ECs "
                   "on RF 1755.")
    report.table(("Data set", "Updates", "Median ECs", "p99", "Max"),
                 [("Berkeley", len(counts), int(percentile(counts, 50)),
                   int(percentile(counts, 99)), max(counts))])
    report.shape_check("max affected ECs >> median (heavy tail)",
                       max(counts) >= 5 * max(percentile(counts, 50), 1))
    report.end_checks()


def main(argv) -> int:
    output = argv[1] if len(argv) > 1 else "experiment_report.md"
    report = ExperimentReport(
        "Delta-net reproduction — experiment report "
        f"(scale={BENCH_SCALE})")
    for step in (table2, table3, figure8, headline, table4, table5,
                 appendix_c, update_latency, check_latency, warm_start):
        print(f"running {step.__name__} ...", flush=True)
        step(report)
    report.save(output)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
