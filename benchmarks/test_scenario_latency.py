"""Experiment: per-update verification latency across scenario families.

The scenario families (:mod:`repro.scenarios`) are the repo's model of
*real, churny* workloads — link flaps, failover storms, BGP resets, ACL
injection, de-aggregation waves — rather than the six fixed datasets.
This suite records what one committed update costs end-to-end (backend
apply + every watched property) per event pattern, and checks two
shapes:

* **flat per-update cost** — Delta-net's incremental claim: the mean
  per-op time must not blow up as the lifecycle gets longer (scale 0.5
  vs 1.0 within :data:`FLAT_COST_FACTOR`),
* **cross-backend agreement** — every family's alert stream matches the
  sweep oracle on the incremental backends (the differential fuzzer's
  invariant, asserted here at benchmark scale).

Absolute microseconds are machine-dependent and gated separately by
``perf_gate.py --suite scenario_latency`` against the committed
``BENCH_scenario_latency.json``.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.analysis.tables import render_table
from repro.scenarios import (
    build_scenario, replay_signatures, run_scenario, scenario_families,
)

from benchmarks.common import microseconds, print_report

#: Fixed seed: the measured traces are identical across runs.
SEED = 11

#: Mean per-op cost at scale 1.0 may exceed scale 0.5 by at most this
#: factor (the trace roughly doubles; flat per-update cost means the
#: mean should barely move — 4x absorbs small-trace noise).
FLAT_COST_FACTOR = 4.0


@lru_cache(maxsize=None)
def _scenario(family: str, scale: float):
    return build_scenario(family, seed=SEED, scale=scale)


@lru_cache(maxsize=None)
def _mean_op_seconds(family: str, scale: float):
    scenario = _scenario(family, scale)
    run = replay_signatures(scenario, "deltanet")
    assert run.error is None, run.error
    return run.seconds / max(1, scenario.num_ops), run


def test_scenario_latency_report():
    rows = []
    for family in scenario_families():
        scenario = _scenario(family, 1.0)
        mean, run = _mean_op_seconds(family, 1.0)
        rows.append((
            family, scenario.num_ops,
            ",".join(spec.name for spec in scenario.property_specs),
            f"{microseconds(mean):.0f}",
            run.num_violations,
        ))
    print_report(render_table(
        ("Family", "Ops", "Watched properties", "us/op (deltanet)",
         "Violations"),
        rows,
        title="Scenario families: per-update verification latency "
              "(seed 11, scale 1.0)"))
    assert len(rows) == len(scenario_families())


@pytest.mark.parametrize("family", scenario_families())
def test_per_update_cost_stays_flat(family):
    small, _ = _mean_op_seconds(family, 0.5)
    large, _ = _mean_op_seconds(family, 1.0)
    assert large <= small * FLAT_COST_FACTOR, (
        f"{family}: mean per-op cost grew {large / small:.1f}x from "
        f"scale 0.5 to 1.0 (>{FLAT_COST_FACTOR}x) — per-update checking "
        f"is no longer flat on this lifecycle")


@pytest.mark.parametrize("family", scenario_families())
def test_families_agree_with_oracle(family):
    report = run_scenario(_scenario(family, 0.5),
                          ["deltanet", "sharded"])
    assert report.ok, "\n" + report.describe()
