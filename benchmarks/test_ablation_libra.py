"""Ablation A4 — Libra-style sharding over Delta-net (§5 future work).

Shards the header space into disjoint slices, each with an independent
Delta-net.  Shape targets:

  * semantics preserved: per-link flows equal the monolithic verifier's,
  * the largest shard's atom count shrinks as shards are added (the
    scale-out property Libra exploited),
  * total atoms overhead from clipping stays small.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.deltanet import DeltaNet
from repro.libra.sharding import ShardedDeltaNet, even_shards

from benchmarks.common import dataset, print_report

_NAME = "Berkeley"
_SHARD_COUNTS = (1, 2, 4, 8)
_CACHE = {}


def _build(n_shards):
    key = n_shards
    if key not in _CACHE:
        sharded = ShardedDeltaNet(even_shards(n_shards, 32), width=32)
        for op in dataset(_NAME).ops:
            if op.is_insert:
                sharded.insert_rule(op.rule)
        _CACHE[key] = sharded
    return _CACHE[key]


def _monolithic():
    if "mono" not in _CACHE:
        net = DeltaNet()
        for op in dataset(_NAME).ops:
            if op.is_insert:
                net.insert_rule(op.rule)
        _CACHE["mono"] = net
    return _CACHE["mono"]


def test_ablation_libra_report():
    mono = _monolithic()
    rows = [("monolithic", 1, mono.num_atoms, mono.num_atoms)]
    for n_shards in _SHARD_COUNTS:
        sharded = _build(n_shards)
        sizes = sharded.shard_sizes()
        rows.append((f"{n_shards} shards", n_shards, sharded.total_atoms,
                     max(atoms for _rules, atoms in sizes)))
    print_report(render_table(
        ("Configuration", "Shards", "Total atoms", "Largest shard atoms"),
        rows, title=f"Ablation — Libra sharding on {_NAME}"))
    assert rows


@pytest.mark.parametrize("n_shards", _SHARD_COUNTS)
def test_semantics_preserved(n_shards):
    mono = _monolithic()
    sharded = _build(n_shards)
    from tests.conftest import deltanet_label_intervals

    mono_labels = deltanet_label_intervals(mono)
    for link, spans in mono_labels.items():
        assert sharded.flows_on(link) == spans


def test_largest_shard_shrinks():
    sizes = [max(atoms for _r, atoms in _build(n).shard_sizes())
             for n in _SHARD_COUNTS]
    assert sizes[-1] < sizes[0], f"sharding should spread atoms: {sizes}"


def test_clipping_overhead_bounded():
    """Clipping adds at most 2 boundaries per (rule, shard crossing)."""
    mono = _monolithic()
    for n_shards in _SHARD_COUNTS:
        sharded = _build(n_shards)
        overhead = sharded.total_atoms - mono.num_atoms
        assert overhead <= 2 * n_shards * max(1, mono.num_atoms)


def test_benchmark_sharded_build(benchmark):
    ops = [op for op in dataset(_NAME).ops if op.is_insert]

    def build():
        sharded = ShardedDeltaNet(even_shards(4, 32), width=32)
        for op in ops:
            sharded.insert_rule(op.rule)
        return sharded

    sharded = benchmark.pedantic(build, rounds=1, iterations=1)
    assert sharded.num_rules == len(ops)
