#!/usr/bin/env python3
"""Update/check-latency benchmarks and performance-regression gate.

Suites, selected with ``--suite``:

* ``update_latency`` (default) — the full per-update verification
  pipeline (apply the rule operation + incremental loop check, Table 3's
  definition) for several engine configurations; baseline
  ``BENCH_update_latency.json``.
* ``check_latency`` — the *check path* head-to-head: per-update verify
  throughput of the persistent forwarding-index checker (``indexed``)
  against the seed's rebuild-per-check sweep (``sweep``,
  :mod:`repro.checkers.sweep`) at scale, plus the label-memory split
  (run-length ``AtomRuns`` vs the equivalent plain sets); baseline
  ``BENCH_check_latency.json``.
* ``warm_start`` — the recovery path: restoring a session from a
  :mod:`repro.persist` snapshot (``warm``) against rebuilding it by
  replaying the op stream from rule zero (``cold`` — per-op checked
  replay; ``cold-batched`` recorded for reference); baseline
  ``BENCH_warm_start.json``, with a machine-independent >=
  :data:`TARGET_WARM_SPEEDUP` x floor on cold/warm at every size.
* ``scenario_latency`` — per-update verification throughput of each
  :mod:`repro.scenarios` family replayed through a Delta-net session
  with the family's own property subscriptions; "size" is the scenario
  scale in percent (``100`` = scale 1.0).  Baseline
  ``BENCH_scenario_latency.json``.  This is the standing latency record
  for the lifecycles the differential fuzzer replays, so a slowdown in
  any property fast path shows up here per event pattern, not just on
  the synthetic stream.
* ``audit_overhead`` — the :mod:`repro.integrity` online-digest tax on
  the per-update path: the checked per-op replay with digest
  maintenance on (``digest``) vs ``DELTANET_DIGESTS=0`` (``nodigest``);
  baseline ``BENCH_audit_overhead.json``, with a machine-independent
  cap of :data:`MAX_AUDIT_OVERHEAD` on the throughput lost to digests.
* ``serve_throughput`` — the multi-tenant serving layer end to end:
  hundreds of concurrent ndjson controllers over asyncio TCP,
  interleaving rule updates with property queries against one
  (``single``) or eight (``multi``) named sessions; baseline
  ``BENCH_serve_throughput.json``.  This gates the daemon's request
  path — framing, hub routing, per-session writer queues, locking —
  not the verifier underneath (update_latency owns that).
* ``recovery_latency`` — the parallel backend's supervised worker
  recovery: SIGKILL one shard worker of a ``size``-rule instance and
  time restart + snapshot re-seed + replay to the next correct answer
  (``supervised``), against tearing the whole verifier down and
  rebuilding it from the rule stream (``cold-rebuild``, the
  pre-supervision response to a dead worker).  Baseline
  ``BENCH_recovery_latency.json``, with a machine-independent >=
  :data:`TARGET_RECOVERY_SPEEDUP` x floor on cold/supervised at the
  acceptance scale.
* ``whatif_latency`` — the Query API's what-if paths: goal-directed
  single-link queries (``goal``) vs an undirected whole-network loop
  sweep (``sweep``), and k-candidate speculative evaluation as
  copy-on-write forks (``spec``) vs clone-then-apply (``clone``).
  Baseline ``BENCH_whatif_latency.json``, with machine-independent >=
  :data:`TARGET_GOAL_SPEEDUP` x and :data:`TARGET_SPEC_SPEEDUP` x
  floors at the acceptance scale.

Each suite writes machine-readable results at the repo root.  The
committed copies are the performance baselines; the ``check`` subcommand
re-measures and fails on regressions, so the hot paths cannot silently
rot.

Cross-machine comparability: every run also measures a fixed pure-Python
calibration loop.  ``check`` scales the baseline's throughput by the
ratio of calibration speeds before applying the tolerance, so a slower
CI runner does not read as a regression (and a faster one does not mask
a real regression).

Each (variant, size) measurement runs in a fresh subprocess so peak-RSS
numbers are clean per configuration.

Usage::

    python benchmarks/perf_gate.py run [--sizes 10000,50000] [-o FILE]
    python benchmarks/perf_gate.py run --suite check_latency
    python benchmarks/perf_gate.py check [--sizes 10000] [--tolerance 0.30]
    python benchmarks/perf_gate.py check --suite check_latency
    python benchmarks/perf_gate.py measure --variant deltanet --size 10000
    python benchmarks/perf_gate.py measure --suite check_latency \\
        --variant indexed --size 10000
"""

from __future__ import annotations

import argparse
import json
import os
import random
import resource
import subprocess
import sys
import time
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, REPO_ROOT)
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_update_latency.json")
CHECK_BASELINE = os.path.join(REPO_ROOT, "BENCH_check_latency.json")
WARM_BASELINE = os.path.join(REPO_ROOT, "BENCH_warm_start.json")
SCENARIO_BASELINE = os.path.join(REPO_ROOT, "BENCH_scenario_latency.json")
RECOVERY_BASELINE = os.path.join(REPO_ROOT, "BENCH_recovery_latency.json")
AUDIT_BASELINE = os.path.join(REPO_ROOT, "BENCH_audit_overhead.json")
SERVE_BASELINE = os.path.join(REPO_ROOT, "BENCH_serve_throughput.json")
WHATIF_BASELINE = os.path.join(REPO_ROOT, "BENCH_whatif_latency.json")
WORKLOAD_SEED = 0xD31A
SCHEMA_VERSION = 1

#: Engine configurations: name -> (engine, replay batch size, check loops).
#: ``batch=None`` is the seed's per-op path.
VARIANTS: Dict[str, dict] = {
    "deltanet": dict(engine="deltanet", batch=None, check=True),
    "deltanet-batched": dict(engine="deltanet", batch=1000, check=True),
    "deltanet-nocheck": dict(engine="deltanet", batch=None, check=False),
    "deltanet-batched-nocheck": dict(engine="deltanet", batch=1000,
                                     check=False),
    "sharded": dict(engine="sharded", batch=None, check=True),
    "sharded-batched": dict(engine="sharded", batch=1000, check=True),
    "parallel-batched": dict(engine="parallel", batch=1000, check=True),
}

#: Variants the regression gate enforces.  The parallel variant is
#: recorded for trajectory but not gated: its throughput depends on the
#: host's core count, which calibration cannot normalize away.
GATED_VARIANTS = ("deltanet", "deltanet-batched", "deltanet-nocheck",
                  "deltanet-batched-nocheck", "sharded", "sharded-batched")

#: The headline acceptance ratio the baseline must demonstrate:
#: batched Delta-net vs. the sequential per-op path, ops/sec.  The
#: floor moved 3x -> 2x when the forwarding index landed: the
#: sequential *denominator* got ~2.6x faster (a per-op check no longer
#: rebuilds O(E) state), so the same batching win reads as a smaller
#: ratio while every absolute throughput rose (docs/performance.md,
#: "Why the batched-speedup floor moved").
TARGET_BATCH_SPEEDUP = 2.0

#: check_latency suite — per-update verify pipeline variants: apply one
#: rule op, then loop-check its delta-graph with either the persistent
#: forwarding index (``indexed``) or the seed's rebuild-per-check sweep
#: (``sweep``).  Measured over a window of ops at full scale so the
#: numbers reflect the steady state, not the ramp-up.
CHECK_VARIANTS = ("indexed", "sweep")

#: Ops measured (and timed individually) after building up to ``size``.
CHECK_WINDOW = 1000

#: The check_latency acceptance ratio: indexed vs sweep verify
#: throughput at the largest measured size.
TARGET_CHECK_SPEEDUP = 3.0

#: warm_start suite — recovery-path variants: rebuild a session by
#: replaying the stream from rule zero with per-op checking (``cold``,
#: the pre-persistence recovery path), the batched equivalent
#: (``cold-batched``, reference), or load a :mod:`repro.persist`
#: snapshot (``warm``).
WARM_VARIANTS = ("cold", "cold-batched", "warm")

#: Batch size used to *build* the snapshot scaffolding for the warm
#: measurement (untimed) and for the cold-batched reference.
WARM_BUILD_BATCH = 1000

#: The warm_start acceptance ratio: snapshot restore must beat the
#: checked cold replay by this factor (machine-independent) at the
#: acceptance scale.  Smaller sizes are measured and reported but not
#: floor-gated: warm-start cost is dominated by a near-constant load
#: time, so the ratio shrinks as the stream shrinks (≈5.1x at 10k vs
#: ≈38x at 50k on the committed baseline) and gating there would flake
#: on noise without testing anything the acceptance criterion cares
#: about.
TARGET_WARM_SPEEDUP = 5.0
WARM_FLOOR_SIZE = 50000

#: recovery_latency suite — supervised worker recovery vs rebuilding
#: the whole parallel verifier from the rule stream.
RECOVERY_VARIANTS = ("supervised", "cold-rebuild")
RECOVERY_SHARDS = 4
#: Worker kills timed per supervised measurement (mean reported).
RECOVERY_ROUNDS = 5
#: The recovery acceptance ratio: one supervised restart + re-seed must
#: beat a full cold rebuild by this factor at the acceptance scale.
#: Machine-independent — both sides run on the same host.  Restart cost
#: is per-shard (snapshot restore + a bounded replay buffer) while the
#: rebuild is O(stream), so the ratio grows with size; gate only at
#: RECOVERY_FLOOR_SIZE for the same reason warm_start gates at 50k.
TARGET_RECOVERY_SPEEDUP = 3.0
RECOVERY_FLOOR_SIZE = 20000

#: audit_overhead suite — the online-digest tax on the per-update path:
#: the same checked per-op replay as ``update_latency``'s ``deltanet``
#: variant, once with digest maintenance on (``digest``, the default)
#: and once with ``DELTANET_DIGESTS=0`` (``nodigest``).  Both run on the
#: same host back to back, so the digest/nodigest throughput ratio is
#: machine-independent.
AUDIT_VARIANTS = ("digest", "nodigest")

#: The audit_overhead acceptance cap: digest maintenance may cost at
#: most this fraction of nodigest throughput on the per-update path
#: (digest >= (1 - cap) x nodigest, ops/sec, every measured size).
MAX_AUDIT_OVERHEAD = 0.10

#: whatif_latency suite — the Query API's two headline fast paths.
#: ``goal`` answers a single-link what-if (impact + loop check) through
#: the goal-directed planner, which restricts the loop check to the
#: affected atoms and links; ``sweep`` answers the same query the
#: undirected way — impact plus a whole-network loop sweep.  ``spec``
#: evaluates :data:`WHATIF_K` candidate updates as copy-on-write
#: speculative forks of one base session; ``clone`` evaluates the same
#: candidates by clone-then-apply (rebuild the base per candidate, the
#: pre-speculation recipe).
WHATIF_VARIANTS = ("goal", "sweep", "spec", "clone")

#: Single-link queries timed per run.  The sweep variant runs fewer:
#: each of its queries pays a whole-network loop check, and ops/sec
#: normalizes the counts away.
WHATIF_QUERIES = {"goal": 64, "sweep": 8}

#: Candidate fan-out and per-candidate batch size for spec/clone.
WHATIF_K = 8
WHATIF_CANDIDATE_OPS = 24

#: The whatif_latency acceptance ratios (machine-independent), gated at
#: the acceptance scale only; smaller sizes are recorded for trend.
TARGET_GOAL_SPEEDUP = 3.0
TARGET_SPEC_SPEEDUP = 5.0
WHATIF_FLOOR_SIZE = 50000

#: scenario_latency suite — one variant per scenario family; the seed is
#: fixed so the measured trace is identical across runs and machines.
SCENARIO_SEED = 11

#: Scenario "sizes" are the scenario scale in percent (100 = 1.0).
#: Variants come from the family registry, so a new family is measured
#: (and gains a baseline on the next `run`) without touching this file.
def _scenario_variants():
    from repro.scenarios import scenario_families

    return scenario_families()


def synthetic_update_workload(size: int, seed: int = WORKLOAD_SEED,
                              width: int = 32, switches: int = 40,
                              removal_fraction: float = 0.3):
    """A deterministic ops stream shaped like the paper's datasets.

    Prefixes come from a shared pool (so atoms << rules, the Table 3
    shape), rules land on random switches with globally unique
    priorities, and ~``removal_fraction`` of operations remove a random
    live rule.
    """
    from repro.core.rules import Rule
    from repro.datasets.format import Op

    rng = random.Random(seed)
    pool = []
    for _ in range(max(64, size // 25)):
        plen = rng.randint(10, 24)
        span = 1 << (width - plen)
        lo = rng.randrange(1 << width) & ~(span - 1)
        pool.append((lo, lo + span))
    ops: List[Op] = []
    live: List[int] = []
    next_rid = 0
    while len(ops) < size:
        if live and rng.random() < removal_fraction:
            ops.append(Op.remove(live.pop(rng.randrange(len(live)))))
            continue
        lo, hi = pool[rng.randrange(len(pool))]
        source = rng.randrange(switches)
        target = (source + rng.randrange(1, switches)) % switches
        ops.append(Op.insert(Rule.forward(
            next_rid, lo, hi, next_rid, f"s{source}", f"s{target}")))
        live.append(next_rid)
        next_rid += 1
    return ops


def calibration_score(rounds: int = 3) -> float:
    """Machine-speed probe: iterations/second of a fixed Python loop."""
    def one_round() -> float:
        total, value = 0, 0x9E3779B9
        start = time.perf_counter()
        for index in range(400_000):
            value = (value * 0x5DEECE66D + index) & 0xFFFFFFFFFFFF
            total += value >> 24
        return 400_000 / (time.perf_counter() - start)

    return max(one_round() for _ in range(rounds))


def measure_variant(variant: str, size: int) -> dict:
    """One (variant, size) measurement; runs inside its own process."""
    from repro.analysis.stats import percentile
    from repro.replay.engine import make_engine, replay

    spec = VARIANTS[variant]
    ops = synthetic_update_workload(size)
    engine = make_engine(spec["engine"], check_loops=spec["check"])
    try:
        start = time.perf_counter()
        result = replay(ops, engine, engine_name=variant,
                        batch_size=spec["batch"])
        elapsed = time.perf_counter() - start
        times = result.times
        atoms = engine.num_atoms
        if atoms is None:
            native = engine.session.native
            atoms = getattr(native, "total_atoms", None)
        return {
            "variant": variant,
            "engine": spec["engine"],
            "batch_size": spec["batch"],
            "check_loops": spec["check"],
            "ops": result.num_ops,
            "seconds": round(elapsed, 4),
            "ops_per_sec": round(result.num_ops / elapsed, 1),
            "p50_us": round(percentile(times, 50) * 1e6, 2),
            "p95_us": round(percentile(times, 95) * 1e6, 2),
            "p99_us": round(percentile(times, 99) * 1e6, 2),
            "atoms": atoms,
            "loops_found": result.loops_found,
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        }
    finally:
        engine.close()


def _label_memory_bytes(net) -> Dict[str, int]:
    """Container bytes of the label table, runs vs equivalent sets.

    Counts the bucket containers themselves (AtomRuns object + its two
    run arrays, or the hash table of an equivalent ``set``); the atom
    int objects are shared across buckets either way and excluded from
    both sides, so the comparison is apples-to-apples.
    """
    import sys as _sys

    runs_bytes = 0
    sets_bytes = 0
    for bucket in net.label.values():
        runs_bytes += bucket.container_bytes()
        sets_bytes += _sys.getsizeof(set(bucket))
    return {"label_bytes_runs": runs_bytes, "label_bytes_sets": sets_bytes}


def measure_check_variant(variant: str, size: int) -> dict:
    """One check_latency measurement; runs inside its own process.

    Builds a ``size``-op data plane (updates unchecked — the build is
    scaffolding), then times the full per-update verify pipeline (apply
    + loop check of the delta) over the final :data:`CHECK_WINDOW` ops
    with the chosen check implementation.
    """
    from repro.analysis.stats import percentile
    from repro.checkers import sweep as sweep_checkers
    from repro.checkers.loops import LoopChecker
    from repro.core.deltanet import DeltaNet

    ops = synthetic_update_workload(size)
    net = DeltaNet(width=32)
    window = min(CHECK_WINDOW, len(ops))
    for op in ops[:-window]:
        if op.is_insert:
            net.insert_rule(op.rule)
        else:
            net.remove_rule(op.rid)
    if variant == "indexed":
        check = LoopChecker(net).check_update
    else:
        check = lambda delta: sweep_checkers.sweep_check_update(net, delta)  # noqa: E731
    times: List[float] = []
    loops_found = 0
    clock = time.perf_counter
    for op in ops[-window:]:
        start = clock()
        if op.is_insert:
            delta = net.insert_rule(op.rule)
        else:
            delta = net.remove_rule(op.rid)
        loops_found += len(check(delta))
        times.append(clock() - start)
    elapsed = sum(times)
    stats = net.findex.label_stats()
    entry = {
        "variant": variant,
        "suite": "check_latency",
        "size": size,
        "window_ops": window,
        "seconds": round(elapsed, 4),
        "ops_per_sec": round(window / elapsed, 1),
        "p50_us": round(percentile(times, 50) * 1e6, 2),
        "p95_us": round(percentile(times, 95) * 1e6, 2),
        "p99_us": round(percentile(times, 99) * 1e6, 2),
        "loops_found": loops_found,
        "rules": net.num_rules,
        "atoms": net.num_atoms,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    entry.update(stats)
    entry.update(_label_memory_bytes(net))
    return entry


def measure_warm_variant(variant: str, size: int) -> dict:
    """One warm_start measurement; runs inside its own process.

    ``cold``/``cold-batched`` time the replay-from-zero recovery path
    (per-op checked, or batched) over the full ``size``-op stream.
    ``warm`` builds the same session once (untimed scaffolding), saves a
    snapshot, then times :meth:`VerificationSession.load` — the restart
    path a production deployment takes.  ``ops_per_sec`` is recovered
    stream ops per second either way, so the numbers are directly
    comparable.
    """
    import tempfile

    from repro.api.session import VerificationSession
    from repro.replay.engine import make_engine, replay

    ops = synthetic_update_workload(size)
    if variant in ("cold", "cold-batched"):
        engine = make_engine("deltanet", check_loops=True)
        try:
            start = time.perf_counter()
            result = replay(ops, engine,
                            batch_size=(WARM_BUILD_BATCH
                                        if variant == "cold-batched"
                                        else None))
            elapsed = time.perf_counter() - start
            entry = {
                "rules": engine.session.num_rules,
                "atoms": engine.num_atoms,
                "loops_found": result.loops_found,
            }
        finally:
            engine.close()
    else:
        engine = make_engine("deltanet", check_loops=True)
        handle, snapshot_path = tempfile.mkstemp(suffix=".snap")
        os.close(handle)
        try:
            replay(ops, engine, batch_size=WARM_BUILD_BATCH)
            save_start = time.perf_counter()
            engine.session.save(snapshot_path)
            save_seconds = time.perf_counter() - save_start
            start = time.perf_counter()
            session = VerificationSession.load(snapshot_path)
            elapsed = time.perf_counter() - start
            entry = {
                "rules": session.num_rules,
                "atoms": session.native.num_atoms,
                "loops_found": len(session.violations()),
                "save_seconds": round(save_seconds, 4),
                "snapshot_bytes": os.path.getsize(snapshot_path),
            }
            session.close()
        finally:
            engine.close()
            if os.path.exists(snapshot_path):
                os.unlink(snapshot_path)
    entry.update({
        "variant": variant,
        "suite": "warm_start",
        "size": size,
        "ops": size,
        "seconds": round(elapsed, 4),
        "ops_per_sec": round(size / elapsed, 1),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    })
    return entry


def measure_audit_variant(variant: str, size: int) -> dict:
    """One audit_overhead measurement; runs inside its own process.

    The environment knob must be set before :mod:`repro` constructs the
    engine — digest maintenance is chosen per structure at creation —
    which is exactly why each measurement gets a fresh interpreter.
    """
    if variant == "nodigest":
        os.environ["DELTANET_DIGESTS"] = "0"
    else:
        os.environ.pop("DELTANET_DIGESTS", None)
    from repro.analysis.stats import percentile
    from repro.replay.engine import make_engine, replay

    ops = synthetic_update_workload(size)
    engine = make_engine("deltanet", check_loops=True)
    try:
        start = time.perf_counter()
        result = replay(ops, engine, engine_name=variant, batch_size=None)
        elapsed = time.perf_counter() - start
        times = result.times
        digest = engine.session.state_digest()
        # Guard the measurement itself: a digest run that silently lost
        # its accumulators would measure the nodigest path twice and
        # the overhead cap would pass vacuously.
        if variant == "digest" and digest is None:
            raise RuntimeError("digest variant ran without digests")
        if variant == "nodigest" and digest is not None:
            raise RuntimeError("nodigest variant still maintained digests")
        return {
            "variant": variant,
            "suite": "audit_overhead",
            "size": size,
            "digests_enabled": digest is not None,
            "ops": result.num_ops,
            "seconds": round(elapsed, 4),
            "ops_per_sec": round(result.num_ops / elapsed, 1),
            "p50_us": round(percentile(times, 50) * 1e6, 2),
            "p95_us": round(percentile(times, 95) * 1e6, 2),
            "p99_us": round(percentile(times, 99) * 1e6, 2),
            "loops_found": result.loops_found,
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        }
    finally:
        engine.close()


def _recovery_apply_all(par, ops, batch: int = 1000) -> None:
    """Apply the ops stream in aggregated unchecked batches.

    Flushes before a removal of a rule still pending in the same batch
    (apply_batch removes first, so such a pair must not share one).
    """
    pending_rules: List = []
    pending_rids: List[int] = []
    pending_inserted: set = set()

    def flush() -> None:
        if pending_rules or pending_rids:
            par.apply_batch(pending_rules, pending_rids, check=False)
            pending_rules.clear()
            pending_rids.clear()
            pending_inserted.clear()

    for op in ops:
        if op.is_insert:
            pending_rules.append(op.rule)
            pending_inserted.add(op.rule.rid)
        else:
            if op.rid in pending_inserted:
                flush()
            pending_rids.append(op.rid)
        if len(pending_rules) + len(pending_rids) >= batch:
            flush()
    flush()


def measure_recovery_variant(variant: str, size: int) -> dict:
    """One recovery_latency measurement; runs inside its own process.

    ``supervised`` builds a process-mode parallel verifier (untimed
    scaffolding), then :data:`RECOVERY_ROUNDS` times SIGKILLs one shard
    worker and times the next fan-out query — detection, restart,
    snapshot re-seed, replay-buffer replay, and the answer itself.
    ``restart_backoff=0`` isolates the mechanism: the backoff sleep is
    a retry-storm policy constant, not a cost of recovery.

    ``cold-rebuild`` times the pre-supervision response to the same
    dead worker: tear everything down and rebuild the verifier from the
    rule stream (unchecked batches — alerts were already delivered),
    ending at the same answered query.
    """
    from repro.libra.parallel import ParallelShardedDeltaNet
    from repro.libra.sharding import even_shards

    ops = synthetic_update_workload(size)
    slices = even_shards(RECOVERY_SHARDS, 32)
    knobs = dict(width=32, deadline=60.0, restart_backoff=0.0,
                 reseed_every=512)
    clock = time.perf_counter
    if variant == "supervised":
        par = ParallelShardedDeltaNet(slices, **knobs)
        try:
            if not par.parallel:
                raise RuntimeError(
                    "recovery_latency needs real worker processes; "
                    "this host cannot spawn them")
            _recovery_apply_all(par, ops)
            reference = par.shard_sizes()
            times: List[float] = []
            for round_index in range(RECOVERY_ROUNDS):
                shard = round_index % RECOVERY_SHARDS
                endpoint = par._workers[shard]
                endpoint.process.kill()
                endpoint.process.join(timeout=5)
                start = clock()
                answer = par.shard_sizes()
                times.append(clock() - start)
                if answer != reference:
                    raise RuntimeError(
                        f"recovery diverged on round {round_index}: "
                        f"{answer} != {reference}")
            if par.restarts != RECOVERY_ROUNDS or par.degraded:
                raise RuntimeError(
                    f"expected {RECOVERY_ROUNDS} clean restarts, got "
                    f"{par.restarts} (degraded={par.degraded})")
            elapsed = sum(times) / len(times)
            entry = {
                "rounds": RECOVERY_ROUNDS,
                "restarts": par.restarts,
                "recovery_seconds_max": round(max(times), 4),
                "rules": par.num_rules,
            }
        finally:
            par.close()
    else:
        start = clock()
        par = ParallelShardedDeltaNet(slices, **knobs)
        try:
            if not par.parallel:
                raise RuntimeError(
                    "recovery_latency needs real worker processes; "
                    "this host cannot spawn them")
            _recovery_apply_all(par, ops)
            par.shard_sizes()
            elapsed = clock() - start
            entry = {"rules": par.num_rules}
        finally:
            par.close()
    entry.update({
        "variant": variant,
        "suite": "recovery_latency",
        "size": size,
        "shards": RECOVERY_SHARDS,
        "seconds": round(elapsed, 4),
        # recoveries (or rebuilds) per second — the gated throughput.
        "ops_per_sec": round(1.0 / elapsed, 2),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    })
    return entry


def measure_scenario_variant(family: str, size: int) -> dict:
    """One scenario_latency measurement; runs inside its own process.

    Builds the family's trace at scale ``size``/100 (untimed), then
    replays it through a Delta-net session watching the scenario's own
    properties, timing each committed update end-to-end (backend apply
    + every subscription check).
    """
    from repro.analysis.stats import percentile
    from repro.api import VerificationSession
    from repro.scenarios import build_scenario

    scenario = build_scenario(family, seed=SCENARIO_SEED,
                              scale=size / 100.0)
    times: List[float] = []
    violations = 0
    clock = time.perf_counter
    with VerificationSession("deltanet", width=scenario.width,
                             properties=scenario.make_properties()) as session:
        for op in scenario.ops:
            start = clock()
            result = session.apply(op)
            times.append(clock() - start)
            violations += len(result.violations)
        atoms = getattr(session.native, "num_atoms", None)
    elapsed = sum(times)
    return {
        "variant": family,
        "suite": "scenario_latency",
        "size": size,
        "ops": len(times),
        "seconds": round(elapsed, 4),
        "ops_per_sec": round(len(times) / elapsed, 1),
        "p50_us": round(percentile(times, 50) * 1e6, 2),
        "p95_us": round(percentile(times, 95) * 1e6, 2),
        "p99_us": round(percentile(times, 99) * 1e6, 2),
        "violations": violations,
        "properties": [spec.name for spec in scenario.property_specs],
        "atoms": atoms,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def _measure_in_subprocess(variant: str, size: int,
                           suite: str = "update_latency") -> dict:
    """Fork a fresh interpreter so peak RSS is this measurement's own."""
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "measure",
         "--suite", suite, "--variant", variant, "--size", str(size)],
        capture_output=True, text=True,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 [os.path.join(REPO_ROOT, "src"), REPO_ROOT,
                  os.environ.get("PYTHONPATH", "")])})
    if proc.returncode != 0:
        raise RuntimeError(
            f"measurement {variant}@{size} failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def run_benchmark(sizes, variants=None, echo=print) -> dict:
    """The full measurement matrix, as the JSON-serializable document."""
    chosen = list(variants) if variants is not None else list(VARIANTS)
    results: Dict[str, dict] = {}
    for size in sizes:
        for variant in chosen:
            echo(f"  measuring {variant} @ {size} rules ...")
            entry = _measure_in_subprocess(variant, size)
            results[f"{variant}@{size}"] = entry
            echo(f"    {entry['ops_per_sec']:,.0f} ops/s  "
                 f"p50={entry['p50_us']}us p99={entry['p99_us']}us "
                 f"rss={entry['peak_rss_kb']}KiB")
    document = {
        "schema": SCHEMA_VERSION,
        "workload": {
            "name": "update-latency",
            "seed": WORKLOAD_SEED,
            "sizes": list(sizes),
            "description": "synthetic prefix-pool rule updates, "
                           "~30% removals, per-update loop checking "
                           "per variant",
        },
        "calibration_score": round(calibration_score(), 1),
        "results": results,
    }
    for size in sizes:
        seq = results.get(f"deltanet@{size}")
        bat = results.get(f"deltanet-batched@{size}")
        if seq and bat:
            document.setdefault("speedups", {})[f"batched@{size}"] = round(
                bat["ops_per_sec"] / seq["ops_per_sec"], 2)
    return document


def run_check_benchmark(sizes, echo=print) -> dict:
    """The check_latency matrix, as the JSON-serializable document."""
    results: Dict[str, dict] = {}
    for size in sizes:
        for variant in CHECK_VARIANTS:
            echo(f"  measuring check:{variant} @ {size} rules ...")
            entry = _measure_in_subprocess(variant, size,
                                           suite="check_latency")
            results[f"{variant}@{size}"] = entry
            echo(f"    {entry['ops_per_sec']:,.0f} verified ops/s  "
                 f"p50={entry['p50_us']}us p99={entry['p99_us']}us  "
                 f"label: {entry['label_runs']} runs / "
                 f"{entry['label_atoms']} atoms, "
                 f"{entry['label_bytes_runs'] / 1024:,.0f}KiB as runs vs "
                 f"{entry['label_bytes_sets'] / 1024:,.0f}KiB as sets")
    document = {
        "schema": SCHEMA_VERSION,
        "workload": {
            "name": "check-latency",
            "seed": WORKLOAD_SEED,
            "sizes": list(sizes),
            "window_ops": CHECK_WINDOW,
            "description": "per-update verify pipeline (apply + loop "
                           "check) over the final window of the "
                           "synthetic prefix-pool stream; indexed = "
                           "persistent forwarding index, sweep = "
                           "rebuild-per-check reference",
        },
        "calibration_score": round(calibration_score(), 1),
        "results": results,
    }
    for size in sizes:
        indexed = results.get(f"indexed@{size}")
        swept = results.get(f"sweep@{size}")
        if indexed and swept:
            speedups = document.setdefault("speedups", {})
            speedups[f"indexed-vs-sweep@{size}"] = round(
                indexed["ops_per_sec"] / swept["ops_per_sec"], 2)
    return document


def run_warm_benchmark(sizes, echo=print) -> dict:
    """The warm_start matrix, as the JSON-serializable document."""
    results: Dict[str, dict] = {}
    for size in sizes:
        for variant in WARM_VARIANTS:
            echo(f"  measuring warm_start:{variant} @ {size} rules ...")
            entry = _measure_in_subprocess(variant, size, suite="warm_start")
            results[f"{variant}@{size}"] = entry
            extra = (f"  snapshot={entry['snapshot_bytes'] / 1024:,.0f}KiB "
                     f"save={entry['save_seconds']}s"
                     if variant == "warm" else "")
            echo(f"    {entry['seconds']}s "
                 f"({entry['ops_per_sec']:,.0f} recovered ops/s){extra}")
    document = {
        "schema": SCHEMA_VERSION,
        "workload": {
            "name": "warm-start",
            "seed": WORKLOAD_SEED,
            "sizes": list(sizes),
            "build_batch": WARM_BUILD_BATCH,
            "description": "session recovery: repro.persist snapshot "
                           "load (warm) vs checked replay from rule "
                           "zero (cold / cold-batched) on the synthetic "
                           "prefix-pool stream",
        },
        "calibration_score": round(calibration_score(), 1),
        "results": results,
    }
    for size in sizes:
        warm = results.get(f"warm@{size}")
        speedups = document.setdefault("speedups", {})
        for reference in ("cold", "cold-batched"):
            entry = results.get(f"{reference}@{size}")
            if warm and entry:
                speedups[f"warm-vs-{reference}@{size}"] = round(
                    entry["seconds"] / warm["seconds"], 2)
    return document


def run_recovery_benchmark(sizes, echo=print) -> dict:
    """The recovery_latency matrix, as the JSON-serializable document."""
    results: Dict[str, dict] = {}
    for size in sizes:
        for variant in RECOVERY_VARIANTS:
            echo(f"  measuring recovery:{variant} @ {size} rules ...")
            entry = _measure_in_subprocess(variant, size,
                                           suite="recovery_latency")
            results[f"{variant}@{size}"] = entry
            if variant == "supervised":
                echo(f"    {entry['seconds']}s mean per recovery "
                     f"(max {entry['recovery_seconds_max']}s, "
                     f"{entry['rounds']} worker kills)")
            else:
                echo(f"    {entry['seconds']}s full rebuild")
    document = {
        "schema": SCHEMA_VERSION,
        "workload": {
            "name": "recovery-latency",
            "seed": WORKLOAD_SEED,
            "sizes": list(sizes),
            "shards": RECOVERY_SHARDS,
            "rounds": RECOVERY_ROUNDS,
            "description": "SIGKILL one shard worker of a process-mode "
                           "parallel verifier; supervised = restart + "
                           "snapshot re-seed + replay to the next "
                           "correct answer, cold-rebuild = rebuild the "
                           "verifier from the rule stream",
        },
        "calibration_score": round(calibration_score(), 1),
        "results": results,
    }
    for size in sizes:
        supervised = results.get(f"supervised@{size}")
        cold = results.get(f"cold-rebuild@{size}")
        if supervised and cold:
            document.setdefault("speedups", {})[
                f"supervised-vs-rebuild@{size}"] = round(
                    cold["seconds"] / supervised["seconds"], 2)
    return document


def run_audit_benchmark(sizes, echo=print) -> dict:
    """The audit_overhead matrix, as the JSON-serializable document."""
    results: Dict[str, dict] = {}
    for size in sizes:
        for variant in AUDIT_VARIANTS:
            echo(f"  measuring audit:{variant} @ {size} rules ...")
            entry = _measure_in_subprocess(variant, size,
                                           suite="audit_overhead")
            results[f"{variant}@{size}"] = entry
            echo(f"    {entry['ops_per_sec']:,.0f} ops/s  "
                 f"p50={entry['p50_us']}us p99={entry['p99_us']}us")
    document = {
        "schema": SCHEMA_VERSION,
        "workload": {
            "name": "audit-overhead",
            "seed": WORKLOAD_SEED,
            "sizes": list(sizes),
            "description": "per-op checked replay of the synthetic "
                           "prefix-pool stream with online digest "
                           "maintenance on (digest) vs "
                           "DELTANET_DIGESTS=0 (nodigest); the ratio "
                           "is the integrity tax on the update path",
        },
        "calibration_score": round(calibration_score(), 1),
        "results": results,
    }
    for size in sizes:
        on = results.get(f"digest@{size}")
        off = results.get(f"nodigest@{size}")
        if on and off:
            document.setdefault("overheads", {})[f"digest-tax@{size}"] = (
                round(1.0 - on["ops_per_sec"] / off["ops_per_sec"], 4))
    return document


def compare_audit_to_baseline(current: dict, baseline_path: str,
                              tolerance: float, echo=print) -> List[str]:
    """Regressed keys of an audit_overhead run vs the baseline.

    Gates the ``digest`` variant's calibration-normalized throughput
    and the machine-independent overhead cap: digest maintenance may
    cost at most :data:`MAX_AUDIT_OVERHEAD` of nodigest throughput at
    every measured size.  The nodigest variant is recorded for the
    ratio but not gated — update_latency already owns the raw path.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    factor = current["calibration_score"] / baseline["calibration_score"]
    echo(f"calibration: baseline={baseline['calibration_score']:,.0f} "
         f"current={current['calibration_score']:,.0f} "
         f"(machine factor {factor:.2f}x)")
    failures = []
    for key, entry in current["results"].items():
        if not key.startswith("digest@"):
            continue
        reference = baseline["results"].get(key)
        if reference is None:
            echo(f"  {key}: no baseline entry, skipping")
            continue
        expected = reference["ops_per_sec"] * factor
        floor = expected * (1.0 - tolerance)
        status = "ok" if entry["ops_per_sec"] >= floor else "REGRESSION"
        echo(f"  {key}: {entry['ops_per_sec']:,.0f} ops/s "
             f"(baseline-normalized {expected:,.0f}, floor {floor:,.0f}) "
             f"{status}")
        if status != "ok":
            failures.append(key)
    for size in current["workload"]["sizes"]:
        on = current["results"].get(f"digest@{size}")
        off = current["results"].get(f"nodigest@{size}")
        if on and off:
            overhead = 1.0 - on["ops_per_sec"] / off["ops_per_sec"]
            status = ("ok" if overhead <= MAX_AUDIT_OVERHEAD
                      else "REGRESSION")
            echo(f"  digest overhead @ {size}: {overhead:.1%} "
                 f"(cap {MAX_AUDIT_OVERHEAD:.0%}) {status}")
            if status != "ok":
                failures.append(f"audit-overhead@{size}")
    return failures


def run_scenario_benchmark(sizes, echo=print) -> dict:
    """The scenario_latency matrix, as the JSON-serializable document."""
    results: Dict[str, dict] = {}
    for size in sizes:
        for family in _scenario_variants():
            echo(f"  measuring scenario:{family} @ scale {size}% ...")
            entry = _measure_in_subprocess(family, size,
                                           suite="scenario_latency")
            results[f"{family}@{size}"] = entry
            echo(f"    {entry['ops']} ops  "
                 f"{entry['ops_per_sec']:,.0f} verified ops/s  "
                 f"p50={entry['p50_us']}us p99={entry['p99_us']}us  "
                 f"violations={entry['violations']}")
    return {
        "schema": SCHEMA_VERSION,
        "workload": {
            "name": "scenario-latency",
            "seed": SCENARIO_SEED,
            "sizes": list(sizes),
            "description": "each repro.scenarios family replayed "
                           "through a deltanet VerificationSession "
                           "watching the family's own properties; "
                           "sizes are scenario scale in percent",
        },
        "calibration_score": round(calibration_score(), 1),
        "results": results,
    }


def compare_scenario_to_baseline(current: dict, baseline_path: str,
                                 tolerance: float, echo=print) -> List[str]:
    """Regressed keys of a scenario_latency run vs the baseline.

    Every family is gated on calibration-normalized per-update verify
    throughput; there is no cross-variant ratio floor (the families are
    workloads, not competing implementations).
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    factor = current["calibration_score"] / baseline["calibration_score"]
    echo(f"calibration: baseline={baseline['calibration_score']:,.0f} "
         f"current={current['calibration_score']:,.0f} "
         f"(machine factor {factor:.2f}x)")
    failures = []
    for key, entry in current["results"].items():
        reference = baseline["results"].get(key)
        if reference is None:
            echo(f"  {key}: no baseline entry, skipping")
            continue
        expected = reference["ops_per_sec"] * factor
        floor = expected * (1.0 - tolerance)
        status = "ok" if entry["ops_per_sec"] >= floor else "REGRESSION"
        echo(f"  {key}: {entry['ops_per_sec']:,.0f} verified ops/s "
             f"(baseline-normalized {expected:,.0f}, floor {floor:,.0f}) "
             f"{status}")
        if status != "ok":
            failures.append(key)
    return failures


def compare_recovery_to_baseline(current: dict, baseline_path: str,
                                 tolerance: float, echo=print) -> List[str]:
    """Regressed keys of a recovery_latency run vs the baseline.

    Gates the ``supervised`` variant's calibration-normalized recovery
    rate (recoveries/sec) and the machine-independent
    supervised-vs-rebuild speedup floor at the acceptance scale.  The
    cold rebuild is recorded for the ratio but not gated — the
    update_latency suite already owns raw replay throughput.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    factor = current["calibration_score"] / baseline["calibration_score"]
    echo(f"calibration: baseline={baseline['calibration_score']:,.0f} "
         f"current={current['calibration_score']:,.0f} "
         f"(machine factor {factor:.2f}x)")
    failures = []
    for key, entry in current["results"].items():
        if not key.startswith("supervised@"):
            continue
        reference = baseline["results"].get(key)
        if reference is None:
            echo(f"  {key}: no baseline entry, skipping")
            continue
        expected = reference["ops_per_sec"] * factor
        floor = expected * (1.0 - tolerance)
        status = "ok" if entry["ops_per_sec"] >= floor else "REGRESSION"
        echo(f"  {key}: {entry['ops_per_sec']:,.2f} recoveries/s "
             f"(baseline-normalized {expected:,.2f}, floor {floor:,.2f}) "
             f"{status}")
        if status != "ok":
            failures.append(key)
    for size in current["workload"]["sizes"]:
        supervised = current["results"].get(f"supervised@{size}")
        cold = current["results"].get(f"cold-rebuild@{size}")
        if supervised and cold:
            ratio = cold["seconds"] / supervised["seconds"]
            if size < RECOVERY_FLOOR_SIZE:
                echo(f"  supervised recovery speedup @ {size}: "
                     f"{ratio:.2f}x vs cold rebuild (recorded; floor "
                     f"gated at >= {RECOVERY_FLOOR_SIZE} rules only)")
                continue
            status = ("ok" if ratio >= TARGET_RECOVERY_SPEEDUP
                      else "REGRESSION")
            echo(f"  supervised recovery speedup @ {size}: {ratio:.2f}x "
                 f"vs cold rebuild (target >= "
                 f"{TARGET_RECOVERY_SPEEDUP}x) {status}")
            if status != "ok":
                failures.append(f"recovery-speedup@{size}")
    return failures


def compare_warm_to_baseline(current: dict, baseline_path: str,
                             tolerance: float, echo=print) -> List[str]:
    """Regressed keys of a warm_start run vs the committed baseline.

    Gates the ``warm`` variant's calibration-normalized restore
    throughput and the machine-independent warm-vs-cold speedup floor
    (the headline: restarting must beat replaying from rule zero by
    >= :data:`TARGET_WARM_SPEEDUP` x).  The cold variants are recorded
    for the ratio but not gated individually — the update_latency suite
    already owns the replay path.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    factor = current["calibration_score"] / baseline["calibration_score"]
    echo(f"calibration: baseline={baseline['calibration_score']:,.0f} "
         f"current={current['calibration_score']:,.0f} "
         f"(machine factor {factor:.2f}x)")
    failures = []
    for key, entry in current["results"].items():
        if not key.startswith("warm@"):
            continue
        reference = baseline["results"].get(key)
        if reference is None:
            echo(f"  {key}: no baseline entry, skipping")
            continue
        expected = reference["ops_per_sec"] * factor
        floor = expected * (1.0 - tolerance)
        status = "ok" if entry["ops_per_sec"] >= floor else "REGRESSION"
        echo(f"  {key}: {entry['ops_per_sec']:,.0f} recovered ops/s "
             f"(baseline-normalized {expected:,.0f}, floor {floor:,.0f}) "
             f"{status}")
        if status != "ok":
            failures.append(key)
    for size in current["workload"]["sizes"]:
        warm = current["results"].get(f"warm@{size}")
        cold = current["results"].get(f"cold@{size}")
        if warm and cold:
            ratio = cold["seconds"] / warm["seconds"]
            if size < WARM_FLOOR_SIZE:
                echo(f"  warm-start speedup @ {size}: {ratio:.2f}x vs "
                     f"cold replay (recorded; floor gated at "
                     f">= {WARM_FLOOR_SIZE} rules only)")
                continue
            status = "ok" if ratio >= TARGET_WARM_SPEEDUP else "REGRESSION"
            echo(f"  warm-start speedup @ {size}: {ratio:.2f}x vs cold "
                 f"replay (target >= {TARGET_WARM_SPEEDUP}x) {status}")
            if status != "ok":
                failures.append(f"warm-speedup@{size}")
    return failures


def compare_check_to_baseline(current: dict, baseline_path: str,
                              tolerance: float, echo=print) -> List[str]:
    """Regressed keys of a check_latency run vs the committed baseline.

    Gates the ``indexed`` variant's calibration-normalized throughput
    and the machine-independent indexed-vs-sweep speedup floor.  The
    ``sweep`` variant is recorded for the ratio but not gated — it is
    the reference implementation, not a hot path.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    factor = current["calibration_score"] / baseline["calibration_score"]
    echo(f"calibration: baseline={baseline['calibration_score']:,.0f} "
         f"current={current['calibration_score']:,.0f} "
         f"(machine factor {factor:.2f}x)")
    failures = []
    for key, entry in current["results"].items():
        if not key.startswith("indexed@"):
            continue
        reference = baseline["results"].get(key)
        if reference is None:
            echo(f"  {key}: no baseline entry, skipping")
            continue
        expected = reference["ops_per_sec"] * factor
        floor = expected * (1.0 - tolerance)
        status = "ok" if entry["ops_per_sec"] >= floor else "REGRESSION"
        echo(f"  {key}: {entry['ops_per_sec']:,.0f} verified ops/s "
             f"(baseline-normalized {expected:,.0f}, floor {floor:,.0f}) "
             f"{status}")
        if status != "ok":
            failures.append(key)
    for size in current["workload"]["sizes"]:
        indexed = current["results"].get(f"indexed@{size}")
        swept = current["results"].get(f"sweep@{size}")
        if indexed and swept:
            ratio = indexed["ops_per_sec"] / swept["ops_per_sec"]
            status = ("ok" if ratio >= TARGET_CHECK_SPEEDUP
                      else "REGRESSION")
            echo(f"  indexed speedup @ {size}: {ratio:.2f}x "
                 f"(target >= {TARGET_CHECK_SPEEDUP}x) {status}")
            if status != "ok":
                failures.append(f"check-speedup@{size}")
    return failures


def compare_to_baseline(current: dict, baseline_path: str,
                        tolerance: float, echo=print) -> List[str]:
    """Regressed result keys of ``current`` vs the committed baseline.

    Throughput comparisons are calibration-normalized (machine speed);
    the batched-vs-sequential speedup floor is machine-independent and
    checked unscaled.  Returns an empty list when everything holds.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    factor = current["calibration_score"] / baseline["calibration_score"]
    echo(f"calibration: baseline={baseline['calibration_score']:,.0f} "
         f"current={current['calibration_score']:,.0f} "
         f"(machine factor {factor:.2f}x)")
    failures = []
    for key, entry in current["results"].items():
        if key.split("@")[0] not in GATED_VARIANTS:
            continue
        reference = baseline["results"].get(key)
        if reference is None:
            echo(f"  {key}: no baseline entry, skipping")
            continue
        expected = reference["ops_per_sec"] * factor
        floor = expected * (1.0 - tolerance)
        status = "ok" if entry["ops_per_sec"] >= floor else "REGRESSION"
        echo(f"  {key}: {entry['ops_per_sec']:,.0f} ops/s "
             f"(baseline-normalized {expected:,.0f}, floor {floor:,.0f}) "
             f"{status}")
        if status != "ok":
            failures.append(key)
    # The headline property must hold on this machine too: batching
    # beats the sequential path by a real margin, machine-independent.
    for size in current["workload"]["sizes"]:
        seq = current["results"].get(f"deltanet@{size}")
        bat = current["results"].get(f"deltanet-batched@{size}")
        if seq and bat:
            ratio = bat["ops_per_sec"] / seq["ops_per_sec"]
            status = "ok" if ratio >= TARGET_BATCH_SPEEDUP else "REGRESSION"
            echo(f"  batched speedup @ {size}: {ratio:.2f}x "
                 f"(target >= {TARGET_BATCH_SPEEDUP}x) {status}")
            if status != "ok":
                failures.append(f"batched-speedup@{size}")
    return failures


#: serve_throughput suite — multi-tenant daemon request-path throughput.
#: ``multi`` spreads the controllers over eight named sessions (each
#: with its own writer task and write lock), ``single`` funnels them
#: all into one; the contrast is recorded but not gated (it is a
#: scheduling property, not a machine-independent ratio).
SERVE_VARIANTS = ("multi", "single")
SERVE_SESSIONS = {"multi": 8, "single": 1}

#: Every Nth controller request is a ``query what=loops`` read; the
#: rest are inserts, so the stream exercises both the writer-queue
#: path and the concurrent-reader path.
SERVE_QUERY_EVERY = 10


def _serve_clients(size: int) -> int:
    """Concurrent controllers for a serve_throughput run of ``size``."""
    return 100 if size <= 5000 else 200


def measure_serve_variant(variant: str, size: int) -> dict:
    """One serve_throughput measurement; runs inside its own process.

    Boots an :class:`~repro.serve.AsyncSessionHub` on an ephemeral TCP
    port and drives it with hundreds of lockstep ndjson controllers
    (asyncio coroutines sharing the daemon's event loop, like the real
    transport), each attached to one of the hub's pre-opened sessions.
    ``size`` is the total request count across all controllers; every
    :data:`SERVE_QUERY_EVERY`-th request is a loop query, the rest are
    inserts with controller-unique rule ids.  Timed end to end from
    the first request to the last reply, so ops/sec includes framing,
    hub routing, writer queues and locking — the serving layer's own
    tax on top of the verifier the other suites gate.
    """
    import asyncio
    import tempfile

    from repro.analysis.stats import percentile
    from repro.serve import AsyncSessionHub, SessionManager, serve_hub_tcp

    sessions = SERVE_SESSIONS[variant]
    clients = _serve_clients(size)
    per_client = size // clients
    root = tempfile.mkdtemp(prefix="perf-serve-")
    clock = time.perf_counter
    times: List[float] = []

    async def controller(index: int, host: str, port: int) -> None:
        reader, writer = await asyncio.open_connection(host, port)

        async def call(request: dict) -> None:
            start = clock()
            writer.write((json.dumps(request) + "\n").encode("utf-8"))
            await writer.drain()
            line = await reader.readline()
            times.append(clock() - start)
            reply = json.loads(line)
            if not reply.get("ok", False):
                raise RuntimeError(f"controller {index}: {reply!r}")

        try:
            await call({"cmd": "attach",
                        "session": f"tenant-{index % sessions}"})
            base = (index + 1) * 1_000_000
            for n in range(per_client):
                if n % SERVE_QUERY_EVERY == SERVE_QUERY_EVERY - 1:
                    await call({"cmd": "query", "what": "loops"})
                else:
                    lo = (n % 64) << 20
                    await call({"cmd": "insert", "rule": {
                        "rid": base + n, "priority": base + n,
                        "lo": lo, "hi": lo + (1 << 20) - 1,
                        "source": f"s{index % 16}", "target": "sink"}})
        finally:
            writer.close()

    async def drive() -> float:
        # Big checkpoint_every: snapshot cadence belongs to the
        # warm_start suite, not this one.  Big max_queue: lockstep
        # controllers cannot legitimately overflow the writer queues,
        # so an "overloaded" here would be a bug, not backpressure.
        manager = SessionManager(root, defaults=dict(
            width=32, properties=("loops",), checkpoint_every=1 << 30,
            max_queue=4096))
        for number in range(sessions):
            manager.open(f"tenant-{number}")
        hub = AsyncSessionHub(manager)
        bound: Dict[str, tuple] = {}
        ready = asyncio.Event()

        def on_ready(host: str, port: int) -> None:
            bound["address"] = (host, port)
            ready.set()

        server = asyncio.ensure_future(serve_hub_tcp(hub, ready=on_ready))
        await ready.wait()
        host, port = bound["address"]
        start = clock()
        await asyncio.gather(*[controller(i, host, port)
                               for i in range(clients)])
        elapsed = clock() - start
        hub.request_stop()
        await server
        return elapsed

    elapsed = asyncio.run(drive())
    ops = len(times)
    return {
        "variant": variant,
        "suite": "serve_throughput",
        "size": size,
        "sessions": sessions,
        "clients": clients,
        "ops": ops,
        "seconds": round(elapsed, 4),
        "ops_per_sec": round(ops / elapsed, 1),
        "p50_us": round(percentile(times, 50) * 1e6, 2),
        "p95_us": round(percentile(times, 95) * 1e6, 2),
        "p99_us": round(percentile(times, 99) * 1e6, 2),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def run_serve_benchmark(sizes, echo=print) -> dict:
    """The serve_throughput matrix, as the JSON-serializable document."""
    results: Dict[str, dict] = {}
    for size in sizes:
        for variant in SERVE_VARIANTS:
            echo(f"  measuring serve:{variant} @ {size} requests ...")
            entry = _measure_in_subprocess(variant, size,
                                           suite="serve_throughput")
            results[f"{variant}@{size}"] = entry
            echo(f"    {entry['ops_per_sec']:,.0f} requests/s over "
                 f"{entry['clients']} controllers x "
                 f"{entry['sessions']} sessions  "
                 f"p50={entry['p50_us']}us p99={entry['p99_us']}us "
                 f"rss={entry['peak_rss_kb']}KiB")
    document = {
        "schema": SCHEMA_VERSION,
        "workload": {
            "name": "serve-throughput",
            "seed": WORKLOAD_SEED,
            "sizes": list(sizes),
            "query_every": SERVE_QUERY_EVERY,
            "description": "lockstep ndjson controllers over asyncio "
                           "TCP against the multi-tenant hub; inserts "
                           "with per-controller rule ids, every "
                           f"{SERVE_QUERY_EVERY}th request a loop "
                           "query; multi = 8 sessions, single = 1",
        },
        "calibration_score": round(calibration_score(), 1),
        "results": results,
    }
    for size in sizes:
        multi = results.get(f"multi@{size}")
        single = results.get(f"single@{size}")
        if multi and single:
            document.setdefault("speedups", {})[f"multi@{size}"] = round(
                multi["ops_per_sec"] / single["ops_per_sec"], 2)
    return document


def compare_serve_to_baseline(current: dict, baseline_path: str,
                              tolerance: float, echo=print) -> List[str]:
    """Regressed keys of a serve_throughput run vs the baseline.

    Gates the ``multi`` variant's calibration-normalized request
    throughput — the tentpole configuration.  ``single`` and the
    multi/single contrast are recorded but not gated: under the GIL
    the contrast is a scheduling artifact of the host, and the
    single-session request path is already covered transitively
    (same code minus the routing fan-out).
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    factor = current["calibration_score"] / baseline["calibration_score"]
    echo(f"calibration: baseline={baseline['calibration_score']:,.0f} "
         f"current={current['calibration_score']:,.0f} "
         f"(machine factor {factor:.2f}x)")
    failures = []
    for key, entry in current["results"].items():
        if not key.startswith("multi@"):
            continue
        reference = baseline["results"].get(key)
        if reference is None:
            echo(f"  {key}: no baseline entry, skipping")
            continue
        expected = reference["ops_per_sec"] * factor
        floor = expected * (1.0 - tolerance)
        status = "ok" if entry["ops_per_sec"] >= floor else "REGRESSION"
        echo(f"  {key}: {entry['ops_per_sec']:,.0f} requests/s "
             f"(baseline-normalized {expected:,.0f}, floor {floor:,.0f}) "
             f"{status}")
        if status != "ok":
            failures.append(key)
    return failures


def _whatif_base_session(size: int):
    """A deltanet session holding the synthetic data plane, unchecked."""
    from repro.api import VerificationSession

    session = VerificationSession("deltanet", width=32)
    for op in synthetic_update_workload(size):
        if op.is_insert:
            session.insert(op.rule)
        else:
            session.remove(op.rid)
    return session


def _whatif_candidates(rng, switches: int = 40):
    """:data:`WHATIF_K` insert-only candidate batches, disjoint rids."""
    from repro.core.rules import Rule

    candidates = []
    for index in range(WHATIF_K):
        base = 10_000_000 + index * WHATIF_CANDIDATE_OPS
        batch = []
        for n in range(WHATIF_CANDIDATE_OPS):
            lo = rng.randrange(1 << 24) << 8
            source = rng.randrange(switches)
            target = (source + rng.randrange(1, switches)) % switches
            batch.append(Rule.forward(base + n, lo, lo + (1 << 8), base + n,
                                      f"s{source}", f"s{target}"))
        candidates.append(batch)
    return candidates


def measure_whatif_variant(variant: str, size: int) -> dict:
    """One whatif_latency measurement; runs inside its own process.

    goal/sweep time single-link what-if queries (with loop check) over
    the same deterministic link sample — goal through the planner's
    restricted evaluation, sweep with an undirected whole-network loop
    check.  spec/clone time the evaluation of one candidate batch each
    — spec as a :meth:`~repro.api.VerificationSession.speculate` fork
    (fork + checked candidate ops + discard), clone by rebuilding the
    base data plane from its live rules before applying the candidate.
    """
    from repro.analysis.stats import percentile
    from repro.api import LinkDown, LoopProperty, VerificationSession
    from repro.checkers.loops import find_forwarding_loops
    from repro.checkers.whatif import link_failure_impact

    rng = random.Random(WORKLOAD_SEED ^ size)
    session = _whatif_base_session(size)
    clock = time.perf_counter
    times: List[float] = []
    extra: Dict[str, int] = {}
    try:
        if variant in ("goal", "sweep"):
            links = sorted(set(session.links()), key=repr)
            sample = [links[rng.randrange(len(links))]
                      for _ in range(WHATIF_QUERIES[variant])]
            native = session.native
            violations = 0
            for link in sample:
                start = clock()
                if variant == "goal":
                    violations += len(
                        session.query(LinkDown(link, loops=True)).violations)
                else:
                    link_failure_impact(native, link)
                    violations += len(find_forwarding_loops(native))
                times.append(clock() - start)
            extra = {"links": len(links), "violations": violations}
        elif variant == "spec":
            session.watch(LoopProperty())
            violations = 0
            for batch in _whatif_candidates(rng):
                start = clock()
                child = session.speculate()
                try:
                    for rule in batch:
                        violations += len(child.insert(rule).violations)
                finally:
                    child.discard()
                times.append(clock() - start)
            extra = {"k": WHATIF_K, "candidate_ops": WHATIF_CANDIDATE_OPS,
                     "violations": violations}
        else:
            base_rules = list(session.rules().values())
            violations = 0
            for batch in _whatif_candidates(rng):
                start = clock()
                clone = VerificationSession("deltanet", width=32)
                try:
                    for rule in base_rules:
                        clone.insert(rule)
                    clone.watch(LoopProperty())
                    for rule in batch:
                        violations += len(clone.insert(rule).violations)
                finally:
                    clone.close()
                times.append(clock() - start)
            extra = {"k": WHATIF_K, "candidate_ops": WHATIF_CANDIDATE_OPS,
                     "violations": violations}
        elapsed = sum(times)
        return {
            "variant": variant,
            "suite": "whatif_latency",
            "size": size,
            "ops": len(times),
            "seconds": round(elapsed, 4),
            "ops_per_sec": round(len(times) / elapsed, 2),
            "p50_us": round(percentile(times, 50) * 1e6, 2),
            "p95_us": round(percentile(times, 95) * 1e6, 2),
            "p99_us": round(percentile(times, 99) * 1e6, 2),
            "rules": session.num_rules,
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            **extra,
        }
    finally:
        session.close()


def run_whatif_benchmark(sizes, echo=print) -> dict:
    """The whatif_latency matrix, as the JSON-serializable document."""
    results: Dict[str, dict] = {}
    for size in sizes:
        for variant in WHATIF_VARIANTS:
            echo(f"  measuring whatif:{variant} @ {size} rules ...")
            entry = _measure_in_subprocess(variant, size,
                                           suite="whatif_latency")
            results[f"{variant}@{size}"] = entry
            unit = ("queries/s" if variant in ("goal", "sweep")
                    else "candidates/s")
            echo(f"    {entry['ops_per_sec']:,.2f} {unit}  "
                 f"p50={entry['p50_us']}us p99={entry['p99_us']}us "
                 f"rss={entry['peak_rss_kb']}KiB")
    document = {
        "schema": SCHEMA_VERSION,
        "workload": {
            "name": "whatif-latency",
            "seed": WORKLOAD_SEED,
            "sizes": list(sizes),
            "k": WHATIF_K,
            "candidate_ops": WHATIF_CANDIDATE_OPS,
            "description": "single-link what-if queries with loop check "
                           "(goal = goal-directed planner, sweep = "
                           "whole-network loop check) and k-candidate "
                           "evaluation (spec = copy-on-write speculative "
                           "forks, clone = clone-then-apply) over the "
                           "synthetic prefix-pool data plane",
        },
        "calibration_score": round(calibration_score(), 1),
        "results": results,
    }
    for size in sizes:
        speedups = document.setdefault("speedups", {})
        for fast, slow in (("goal", "sweep"), ("spec", "clone")):
            lead = results.get(f"{fast}@{size}")
            trail = results.get(f"{slow}@{size}")
            if lead and trail:
                speedups[f"{fast}-vs-{slow}@{size}"] = round(
                    lead["ops_per_sec"] / trail["ops_per_sec"], 2)
    return document


def compare_whatif_to_baseline(current: dict, baseline_path: str,
                               tolerance: float, echo=print) -> List[str]:
    """Regressed keys of a whatif_latency run vs the baseline.

    Gates the ``goal`` and ``spec`` variants' calibration-normalized
    throughput and the two machine-independent acceptance ratios at the
    acceptance scale: goal-directed >= :data:`TARGET_GOAL_SPEEDUP` x the
    undirected sweep, and speculative forks >=
    :data:`TARGET_SPEC_SPEEDUP` x clone-then-apply.  The sweep and
    clone references are recorded for the ratios but not gated — they
    are the superseded recipes, not hot paths.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    factor = current["calibration_score"] / baseline["calibration_score"]
    echo(f"calibration: baseline={baseline['calibration_score']:,.0f} "
         f"current={current['calibration_score']:,.0f} "
         f"(machine factor {factor:.2f}x)")
    failures = []
    for key, entry in current["results"].items():
        if key.split("@")[0] not in ("goal", "spec"):
            continue
        reference = baseline["results"].get(key)
        if reference is None:
            echo(f"  {key}: no baseline entry, skipping")
            continue
        expected = reference["ops_per_sec"] * factor
        floor = expected * (1.0 - tolerance)
        status = "ok" if entry["ops_per_sec"] >= floor else "REGRESSION"
        echo(f"  {key}: {entry['ops_per_sec']:,.2f} evals/s "
             f"(baseline-normalized {expected:,.2f}, floor {floor:,.2f}) "
             f"{status}")
        if status != "ok":
            failures.append(key)
    for size in current["workload"]["sizes"]:
        for fast, slow, target in (
                ("goal", "sweep", TARGET_GOAL_SPEEDUP),
                ("spec", "clone", TARGET_SPEC_SPEEDUP)):
            lead = current["results"].get(f"{fast}@{size}")
            trail = current["results"].get(f"{slow}@{size}")
            if not (lead and trail):
                continue
            ratio = lead["ops_per_sec"] / trail["ops_per_sec"]
            if size < WHATIF_FLOOR_SIZE:
                echo(f"  {fast}-vs-{slow} speedup @ {size}: {ratio:.2f}x "
                     f"(recorded; floor gated at >= {WHATIF_FLOOR_SIZE} "
                     f"rules only)")
                continue
            status = "ok" if ratio >= target else "REGRESSION"
            echo(f"  {fast}-vs-{slow} speedup @ {size}: {ratio:.2f}x "
                 f"(target >= {target}x) {status}")
            if status != "ok":
                failures.append(f"{fast}-speedup@{size}")
    return failures


def check_regressions(baseline_path: str, sizes, tolerance: float,
                      suite: str = "update_latency", echo=print) -> int:
    """Re-measure the gated variants and compare against the baseline."""
    if suite == "warm_start":
        current = run_warm_benchmark(sizes, echo=echo)
        failures = compare_warm_to_baseline(current, baseline_path,
                                            tolerance, echo=echo)
    elif suite == "check_latency":
        current = run_check_benchmark(sizes, echo=echo)
        failures = compare_check_to_baseline(current, baseline_path,
                                             tolerance, echo=echo)
    elif suite == "scenario_latency":
        current = run_scenario_benchmark(sizes, echo=echo)
        failures = compare_scenario_to_baseline(current, baseline_path,
                                                tolerance, echo=echo)
    elif suite == "recovery_latency":
        current = run_recovery_benchmark(sizes, echo=echo)
        failures = compare_recovery_to_baseline(current, baseline_path,
                                                tolerance, echo=echo)
    elif suite == "audit_overhead":
        current = run_audit_benchmark(sizes, echo=echo)
        failures = compare_audit_to_baseline(current, baseline_path,
                                             tolerance, echo=echo)
    elif suite == "serve_throughput":
        current = run_serve_benchmark(sizes, echo=echo)
        failures = compare_serve_to_baseline(current, baseline_path,
                                             tolerance, echo=echo)
    elif suite == "whatif_latency":
        current = run_whatif_benchmark(sizes, echo=echo)
        failures = compare_whatif_to_baseline(current, baseline_path,
                                              tolerance, echo=echo)
    else:
        current = run_benchmark(sizes, variants=GATED_VARIANTS, echo=echo)
        failures = compare_to_baseline(current, baseline_path, tolerance,
                                       echo=echo)
    if failures:
        echo(f"PERF GATE FAILED: {', '.join(failures)}")
        return 1
    echo("perf gate passed")
    return 0


def _parse_sizes(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


#: Per-suite defaults: baseline path, run sizes, check sizes.  The
#: warm_start gate runs at 50k — the acceptance scale — because its
#: cold reference is measured anyway and the warm path is fast.
_SUITES = {
    "update_latency": (DEFAULT_BASELINE, [10000, 50000], [10000]),
    "check_latency": (CHECK_BASELINE, [10000, 50000], [10000]),
    "warm_start": (WARM_BASELINE, [10000, 50000], [50000]),
    # scenario sizes are scale percent; the PR gate re-checks 50%.
    "scenario_latency": (SCENARIO_BASELINE, [50, 100], [50]),
    "recovery_latency": (RECOVERY_BASELINE, [5000, 20000], [20000]),
    # the PR gate re-checks the digest tax at 10k; the committed
    # baseline demonstrates it at the 50k acceptance scale too.
    "audit_overhead": (AUDIT_BASELINE, [10000, 50000], [10000]),
    # serve sizes are total requests across all controllers; the PR
    # gate re-checks the 100-controller point, nightly runs both.
    "serve_throughput": (SERVE_BASELINE, [5000, 20000], [5000]),
    # the PR gate re-checks the query/speculation paths at 10k; the
    # committed baseline demonstrates the >= 3x goal-directed and
    # >= 5x speculative-fork floors at the 50k acceptance scale.
    "whatif_latency": (WHATIF_BASELINE, [10000, 50000], [10000]),
}


def _suite_default(value, args, index: int):
    return value if value is not None else _SUITES[args.suite][index]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    suites = tuple(_SUITES)

    run_cmd = sub.add_parser("run", help="measure and write the baseline")
    run_cmd.add_argument("--suite", choices=suites, default="update_latency")
    run_cmd.add_argument("--sizes", type=_parse_sizes, default=None)
    run_cmd.add_argument("-o", "--output", default=None,
                         help="baseline file (defaults to the suite's)")

    check_cmd = sub.add_parser("check", help="fail on perf regressions")
    check_cmd.add_argument("--suite", choices=suites,
                           default="update_latency")
    check_cmd.add_argument("--sizes", type=_parse_sizes, default=None)
    check_cmd.add_argument("--baseline", default=None,
                           help="baseline file (defaults to the suite's)")
    check_cmd.add_argument("--tolerance", type=float, default=0.30)

    measure_cmd = sub.add_parser(
        "measure", help="single measurement, JSON on stdout (internal)")
    measure_cmd.add_argument("--suite", choices=suites,
                             default="update_latency")
    measure_cmd.add_argument("--variant", required=True)
    measure_cmd.add_argument("--size", type=int, required=True)

    args = parser.parse_args(argv)
    if args.command == "measure":
        if args.suite == "warm_start":
            if args.variant not in WARM_VARIANTS:
                parser.error(f"--variant must be one of {WARM_VARIANTS} "
                             f"for the warm_start suite")
            entry = measure_warm_variant(args.variant, args.size)
        elif args.suite == "check_latency":
            if args.variant not in CHECK_VARIANTS:
                parser.error(f"--variant must be one of {CHECK_VARIANTS} "
                             f"for the check_latency suite")
            entry = measure_check_variant(args.variant, args.size)
        elif args.suite == "scenario_latency":
            if args.variant not in _scenario_variants():
                parser.error(f"--variant must be one of "
                             f"{_scenario_variants()} for the "
                             f"scenario_latency suite")
            entry = measure_scenario_variant(args.variant, args.size)
        elif args.suite == "recovery_latency":
            if args.variant not in RECOVERY_VARIANTS:
                parser.error(f"--variant must be one of "
                             f"{RECOVERY_VARIANTS} for the "
                             f"recovery_latency suite")
            entry = measure_recovery_variant(args.variant, args.size)
        elif args.suite == "audit_overhead":
            if args.variant not in AUDIT_VARIANTS:
                parser.error(f"--variant must be one of {AUDIT_VARIANTS} "
                             f"for the audit_overhead suite")
            entry = measure_audit_variant(args.variant, args.size)
        elif args.suite == "serve_throughput":
            if args.variant not in SERVE_VARIANTS:
                parser.error(f"--variant must be one of {SERVE_VARIANTS} "
                             f"for the serve_throughput suite")
            entry = measure_serve_variant(args.variant, args.size)
        elif args.suite == "whatif_latency":
            if args.variant not in WHATIF_VARIANTS:
                parser.error(f"--variant must be one of {WHATIF_VARIANTS} "
                             f"for the whatif_latency suite")
            entry = measure_whatif_variant(args.variant, args.size)
        else:
            if args.variant not in VARIANTS:
                parser.error(f"--variant must be one of "
                             f"{sorted(VARIANTS)} for the update_latency "
                             f"suite")
            entry = measure_variant(args.variant, args.size)
        json.dump(entry, sys.stdout)
        return 0
    if args.command == "run":
        output = _suite_default(args.output, args, 0)
        sizes = _suite_default(args.sizes, args, 1)
        if args.suite == "warm_start":
            document = run_warm_benchmark(sizes)
        elif args.suite == "check_latency":
            document = run_check_benchmark(sizes)
        elif args.suite == "scenario_latency":
            document = run_scenario_benchmark(sizes)
        elif args.suite == "recovery_latency":
            document = run_recovery_benchmark(sizes)
        elif args.suite == "audit_overhead":
            document = run_audit_benchmark(sizes)
        elif args.suite == "serve_throughput":
            document = run_serve_benchmark(sizes)
        elif args.suite == "whatif_latency":
            document = run_whatif_benchmark(sizes)
        else:
            document = run_benchmark(sizes)
        with open(output, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {output}")
        for key, value in document.get("speedups", {}).items():
            print(f"  speedup {key}: {value}x")
        return 0
    baseline = _suite_default(args.baseline, args, 0)
    sizes = _suite_default(args.sizes, args, 2)
    return check_regressions(baseline, sizes, args.tolerance,
                             suite=args.suite)


if __name__ == "__main__":
    sys.exit(main())
