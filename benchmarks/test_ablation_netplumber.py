"""Ablation A3 — plumbing-graph (NetPlumber-style) state growth (§5).

"NetPlumber incrementally creates a graph that, in the worst case,
consists of R^2 edges ... In contrast to NetPlumber, Delta-net maintains
a graph whose size is proportional to the number of links in the
network."

Shape targets:
  * pipes grow super-linearly in rules on a realistic data plane, while
    Delta-net's labelled-link count stays bounded by the topology,
  * reachability answers agree between the two systems.
"""

import random

import pytest

from repro.analysis.tables import render_table
from repro.checkers.reachability import reachable_atoms
from repro.core.deltanet import DeltaNet
from repro.core.intervals import IntervalSet
from repro.core.rules import Rule
from repro.netplumber.plumbing import NetPlumber

from benchmarks.common import BENCH_SCALE, print_report

_SIZES = tuple(max(20, int(n * BENCH_SCALE)) for n in (40, 80, 160))
_CACHE = {}


def _rules(count):
    """Shortest-path-style rules on a 6-switch ring with heavy overlap."""
    rng = random.Random(1234)
    rules = []
    for rid in range(count):
        plen = rng.randint(2, 10)
        span = 1 << (12 - plen)
        lo = rng.randrange(1 << 12) & ~(span - 1)
        switch = rid % 6
        rules.append(Rule.forward(rid, lo, lo + span, rid,
                                  f"s{switch}", f"s{(switch + 1) % 6}"))
    return rules


def _measure(count):
    if count in _CACHE:
        return _CACHE[count]
    rules = _rules(count)
    plumber = NetPlumber(width=12)
    net = DeltaNet(width=12)
    for rule in rules:
        plumber.insert_rule(rule)
        net.insert_rule(rule)
    labelled_links = sum(1 for _ in net.links())
    _CACHE[count] = (plumber, net, plumber.num_pipes, labelled_links)
    return _CACHE[count]


def test_ablation_netplumber_report():
    rows = []
    for count in _SIZES:
        _plumber, net, pipes, links = _measure(count)
        rows.append((count, pipes, links, net.num_atoms))
    print_report(render_table(
        ("Rules", "NetPlumber pipes", "Delta-net labelled links",
         "Delta-net atoms"),
        rows, title="Ablation — plumbing graph vs edge-labelled graph"))
    assert rows


def test_pipes_grow_superlinearly_links_stay_topology_bounded():
    small, large = _SIZES[0], _SIZES[-1]
    _p1, _n1, pipes_small, links_small = _measure(small)
    _p2, _n2, pipes_large, links_large = _measure(large)
    rule_growth = large / small
    pipe_growth = pipes_large / max(pipes_small, 1)
    assert pipe_growth > rule_growth * 1.5, (
        f"pipes should grow super-linearly: {pipe_growth:.1f}x vs "
        f"rule growth {rule_growth:.1f}x")
    assert links_large <= 12  # 6-switch ring: at most 6 used directed links + drop


@pytest.mark.parametrize("count", [_SIZES[0]])
def test_reachability_agreement(count):
    plumber, net, _pipes, _links = _measure(count)
    for src in ("s0", "s2", "s4"):
        for dst in ("s1", "s3"):
            atoms = reachable_atoms(net, src, dst)
            expected = IntervalSet(net.atoms.atom_interval(a) for a in atoms)
            assert plumber.reachable(src, dst) == expected


def test_benchmark_plumbing_insertions(benchmark):
    rules = _rules(_SIZES[0])

    def build():
        plumber = NetPlumber(width=12)
        for rule in rules:
            plumber.insert_rule(rule)
        return plumber

    plumber = benchmark.pedantic(build, rounds=1, iterations=1)
    assert plumber.num_rules == len(rules)
