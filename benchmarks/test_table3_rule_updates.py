"""Experiment E2 — Table 3: checking rule insertions and removals.

For every dataset, replay all operations through Delta-net with
per-update delta-graph loop checking, and report the paper's four rows:
total atoms, median and average per-op time, and the fraction of ops
under the 250 microsecond bound (absolute numbers differ — Python vs
C++ — the shape targets are asserted below).

Shape targets:
  * atoms << rules on every dataset (Table 3 row 1),
  * median <= average (heavy-tailed latency),
  * the replay completes with a consistent data plane.
"""

import pytest

from repro.analysis.tables import render_table

from benchmarks.common import (
    DATASET_NAMES, dataset, deltanet_replay, microseconds, print_report,
)


def test_table3_report():
    rows = []
    for name in DATASET_NAMES:
        engine, result = deltanet_replay(name)
        summary = result.summary()
        rows.append((
            name,
            engine.num_atoms,
            dataset(name).num_inserts,
            f"{microseconds(summary['median']):.1f}",
            f"{microseconds(summary['mean']):.1f}",
            f"{summary['frac_below_threshold'] * 100:.1f}%",
            result.loops_found,
        ))
    print_report(render_table(
        ("Data set", "Atoms", "Rules", "Median us", "Average us",
         "< 250us", "Loops"),
        rows,
        title="Table 3 — Delta-net rule-update checking "
              "(paper: medians 1-5us, averages 3-41us on C++/Xeon)"))
    assert len(rows) == 8


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_atoms_much_smaller_than_rules(name):
    """Table 3's headline structural result."""
    engine, _result = deltanet_replay(name)
    rules = dataset(name).num_inserts
    if rules >= 50:
        assert engine.num_atoms < rules, (
            f"{name}: atoms ({engine.num_atoms}) not below rules ({rules})")


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_median_at_most_average(name):
    _engine, result = deltanet_replay(name)
    summary = result.summary()
    assert summary["median"] <= summary["mean"] * 1.001


@pytest.mark.parametrize("name", ["Berkeley", "Airtel1", "4Switch"])
def test_benchmark_deltanet_replay(benchmark, name):
    """pytest-benchmark timing for the full checked replay."""
    from repro.replay.engine import DeltaNetEngine, replay

    ops = dataset(name).ops

    def run():
        return replay(ops, DeltaNetEngine())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.num_ops == len(ops)
