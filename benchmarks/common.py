"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one paper artifact (a table or figure) at
laptop scale and prints a side-by-side report.  ``REPRO_BENCH_SCALE``
(default 1.0) scales the workload sizes; the assertions check the
*shape* of each result (who wins, monotonicity, ratios), never absolute
microseconds — see DESIGN.md §3 for the shape targets.

Dataset builds are cached per session so the eight workloads are only
generated once across all benchmark modules.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.datasets.builders import (
    DATASET_BUILDERS, PAPER_TABLE2, Dataset, build_dataset,
)
from repro.replay.engine import (
    DeltaNetEngine, ReplayResult, SessionEngine, VeriflowEngine,
    make_engine, replay,
)

#: Workload multiplier, settable from the environment.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: All eight Table 2 datasets, in the paper's row order.
DATASET_NAMES: Tuple[str, ...] = (
    "Berkeley", "INET", "RF-1755", "RF-3257", "RF-6461",
    "Airtel1", "Airtel2", "4Switch",
)

#: Smaller subset for the quadratic baselines (Veriflow-RI is slow by design).
BASELINE_DATASET_NAMES: Tuple[str, ...] = ("Berkeley", "Airtel1", "4Switch")


@lru_cache(maxsize=None)
def dataset(name: str) -> Dataset:
    """Build (once) a Table 2 dataset at the configured benchmark scale."""
    return build_dataset(name, scale=BENCH_SCALE)


@lru_cache(maxsize=None)
def session_replay(name: str, backend: str = "deltanet",
                   check_loops: bool = True,
                   max_ops: Optional[int] = None) -> Tuple[SessionEngine, ReplayResult]:
    """Replay a dataset through any registry backend, via the unified
    :class:`repro.api.VerificationSession` (caching the result).

    ``max_ops`` truncates the workload — the quadratic baselines (apv,
    netplumber) are benchmarked on prefixes of the big datasets.
    """
    engine = make_engine(backend, check_loops=check_loops)
    ops = dataset(name).ops
    if max_ops is not None:
        ops = ops[:max_ops]
    result = replay(ops, engine, engine_name=backend)
    return engine, result


def deltanet_replay(name: str, check_loops: bool = True) -> Tuple[SessionEngine, ReplayResult]:
    """Replay a dataset through Delta-net once (via :func:`session_replay`,
    so the cache is shared with the cross-backend benchmarks)."""
    return session_replay(name, "deltanet", check_loops)


def veriflow_replay(name: str, check_loops: bool = True) -> Tuple[SessionEngine, ReplayResult]:
    return session_replay(name, "veriflow", check_loops)


@lru_cache(maxsize=None)
def insert_only_deltanet(name: str) -> DeltaNetEngine:
    """A consistent data plane: apply only the dataset's insertions.

    This mirrors §4.3.2: "we generate a consistent data plane from all
    the rule insertions in the ... data sets".
    """
    engine = DeltaNetEngine(check_loops=False)
    for op in dataset(name).ops:
        if op.is_insert:
            engine.process(op)
    return engine


@lru_cache(maxsize=None)
def insert_only_veriflow(name: str) -> VeriflowEngine:
    engine = VeriflowEngine(check_loops=False)
    for op in dataset(name).ops:
        if op.is_insert:
            engine.process(op)
    return engine


def microseconds(seconds: float) -> float:
    return seconds * 1e6


def print_report(text: str) -> None:
    """Print a report block that survives pytest's capture (-s not needed
    when the run fails; use `pytest -s benchmarks/` to always see these)."""
    print("\n" + text + "\n")
