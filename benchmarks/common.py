"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one paper artifact (a table or figure) at
laptop scale and prints a side-by-side report.  ``REPRO_BENCH_SCALE``
(default 1.0) scales the workload sizes; the assertions check the
*shape* of each result (who wins, monotonicity, ratios), never absolute
microseconds — see DESIGN.md §3 for the shape targets.

Dataset builds are cached per session so the eight workloads are only
generated once across all benchmark modules.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.datasets.builders import (
    DATASET_BUILDERS, PAPER_TABLE2, Dataset, build_dataset,
)
from repro.replay.engine import DeltaNetEngine, ReplayResult, VeriflowEngine, replay

#: Workload multiplier, settable from the environment.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: All eight Table 2 datasets, in the paper's row order.
DATASET_NAMES: Tuple[str, ...] = (
    "Berkeley", "INET", "RF-1755", "RF-3257", "RF-6461",
    "Airtel1", "Airtel2", "4Switch",
)

#: Smaller subset for the quadratic baselines (Veriflow-RI is slow by design).
BASELINE_DATASET_NAMES: Tuple[str, ...] = ("Berkeley", "Airtel1", "4Switch")


@lru_cache(maxsize=None)
def dataset(name: str) -> Dataset:
    """Build (once) a Table 2 dataset at the configured benchmark scale."""
    return build_dataset(name, scale=BENCH_SCALE)


@lru_cache(maxsize=None)
def deltanet_replay(name: str, check_loops: bool = True) -> Tuple[DeltaNetEngine, ReplayResult]:
    """Replay a dataset through Delta-net once, caching the result."""
    engine = DeltaNetEngine(check_loops=check_loops)
    result = replay(dataset(name).ops, engine, engine_name="Delta-net")
    return engine, result


@lru_cache(maxsize=None)
def veriflow_replay(name: str, check_loops: bool = True) -> Tuple[VeriflowEngine, ReplayResult]:
    engine = VeriflowEngine(check_loops=check_loops)
    result = replay(dataset(name).ops, engine, engine_name="Veriflow-RI")
    return engine, result


@lru_cache(maxsize=None)
def insert_only_deltanet(name: str) -> DeltaNetEngine:
    """A consistent data plane: apply only the dataset's insertions.

    This mirrors §4.3.2: "we generate a consistent data plane from all
    the rule insertions in the ... data sets".
    """
    engine = DeltaNetEngine(check_loops=False)
    for op in dataset(name).ops:
        if op.is_insert:
            engine.process(op)
    return engine


@lru_cache(maxsize=None)
def insert_only_veriflow(name: str) -> VeriflowEngine:
    engine = VeriflowEngine(check_loops=False)
    for op in dataset(name).ops:
        if op.is_insert:
            engine.process(op)
    return engine


def microseconds(seconds: float) -> float:
    return seconds * 1e6


def print_report(text: str) -> None:
    """Print a report block that survives pytest's capture (-s not needed
    when the run fails; use `pytest -s benchmarks/` to always see these)."""
    print("\n" + text + "\n")
