"""Experiment E3 — Figure 8: CDF of combined rule-update + loop-check time.

Renders the per-operation latency CDFs of all eight datasets on one
log-x ASCII plot, the terminal analogue of the paper's Figure 8.

Shape targets:
  * every CDF is monotone and reaches 1.0,
  * the INET-style dataset is among the heaviest tails (the paper calls
    INET "one of the more difficult ones for Delta-net").
"""

from repro.analysis.cdf import ascii_cdf, cdf_points
from repro.analysis.stats import percentile

from benchmarks.common import DATASET_NAMES, deltanet_replay, print_report


def _series():
    return {name: deltanet_replay(name)[1].times for name in DATASET_NAMES}


def test_figure8_ascii_cdf():
    series = _series()
    print_report(ascii_cdf(series, unit="seconds/op"))
    for name, samples in series.items():
        points = cdf_points(samples)
        fractions = [f for _value, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


def test_update_work_sets_the_tail():
    """Figure 8 shape, post forwarding-index: tails track update weight.

    The seed asserted INET among the heaviest tails — true while every
    loop check rebuilt an O(E) out-link view, because INET has the most
    links.  The persistent forwarding index removed that per-check
    rebuild, so a dataset's tail is now set by its *update* work (atoms
    touched per op): Berkeley, whose wide rules own the most atoms per
    update, carries the heaviest CDF tail by a wide margin.
    """
    series = _series()
    p90 = {name: percentile(samples, 90) for name, samples in series.items()}
    ranked = sorted(p90, key=p90.get, reverse=True)
    # Slack on purpose (top-2, not argmax): an exact argmax over eight
    # timing distributions would be knife-edge on noisy runners.
    assert "Berkeley" in ranked[:2], (
        f"expected update-heavy Berkeley among the heaviest tails, "
        f"got {ranked} ({p90})")


def test_checking_tax_is_bounded():
    """The headline of the index: checking rides the update's delta.

    On the link-rich datasets, the median latency with per-update loop
    checking enabled must stay within a small factor of the bare update
    path — the check chases only the delta's atoms
    (O(affected · path · log)), so its cost scales with the update,
    never with the edge set.  A rebuild-per-check regression pays O(E)
    per op and blows far past this bound exactly on these datasets
    (measured tax today: < 3x; the sweep-based checker is benchmarked
    head-to-head by ``perf_gate.py`` 's ``check_latency`` suite).
    Berkeley is excluded deliberately: its wide rules make the *genuine*
    per-delta chase large, which is update weight, not edge-set size.
    """
    link_rich = ("INET", "RF-1755", "RF-3257", "RF-6461",
                 "Airtel1", "Airtel2")
    for name in link_rich:
        checked = deltanet_replay(name)[1].times
        unchecked = deltanet_replay(name, check_loops=False)[1].times
        ratio = percentile(checked, 50) / percentile(unchecked, 50)
        assert ratio < 12.0, (
            f"{name}: checking inflates median latency by {ratio:.1f}x — "
            f"the check path is no longer riding the delta")


def test_benchmark_cdf_rendering(benchmark):
    series = _series()
    art = benchmark(lambda: ascii_cdf(series))
    assert "CDF" in art
