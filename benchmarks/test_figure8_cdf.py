"""Experiment E3 — Figure 8: CDF of combined rule-update + loop-check time.

Renders the per-operation latency CDFs of all eight datasets on one
log-x ASCII plot, the terminal analogue of the paper's Figure 8.

Shape targets:
  * every CDF is monotone and reaches 1.0,
  * the INET-style dataset is among the heaviest tails (the paper calls
    INET "one of the more difficult ones for Delta-net").
"""

from repro.analysis.cdf import ascii_cdf, cdf_points
from repro.analysis.stats import percentile

from benchmarks.common import DATASET_NAMES, deltanet_replay, print_report


def _series():
    return {name: deltanet_replay(name)[1].times for name in DATASET_NAMES}


def test_figure8_ascii_cdf():
    series = _series()
    print_report(ascii_cdf(series, unit="seconds/op"))
    for name, samples in series.items():
        points = cdf_points(samples)
        fractions = [f for _value, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


def test_inet_among_heaviest_tails():
    """Figure 8: INET's CDF sits to the right of most datasets."""
    series = _series()
    p90 = {name: percentile(samples, 90) for name, samples in series.items()}
    harder_than_inet = [n for n, value in p90.items() if value > p90["INET"]]
    assert len(harder_than_inet) <= 3, (
        f"INET should be among the harder datasets, but {harder_than_inet} "
        f"all exceed its p90")


def test_benchmark_cdf_rendering(benchmark):
    series = _series()
    art = benchmark(lambda: ascii_cdf(series))
    assert "CDF" in art
