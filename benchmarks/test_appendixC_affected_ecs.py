"""Experiment E6 — Appendix C: equivalence classes affected per update.

The paper re-ran Veriflow-RI on its RF-1755 dataset and found single
insertions affecting up to 319,681 ECs — far beyond the 574 reported by
the original Veriflow evaluation, motivating why EC recomputation does
not scale.

Shape targets:
  * the maximum affected-EC count is much larger than the *median*
    (heavy tail),
  * Delta-net's per-update work (atoms in the rule's interval) stays
    bounded by the same quantity — it never touches more.
"""

import pytest

from repro.analysis.stats import percentile
from repro.analysis.tables import render_table
from repro.replay.engine import VeriflowEngine
from repro.veriflow.ecs import equivalence_classes

from benchmarks.common import dataset, print_report

_NAME = "Berkeley"  # stands in for RF-1755 (Veriflow-RI replay is quadratic)
_CACHE = {}


def _ec_counts():
    if _NAME in _CACHE:
        return _CACHE[_NAME]
    counts = []
    engine = VeriflowEngine(check_loops=False)
    for op in dataset(_NAME).ops:
        if op.is_insert:
            result = engine.veriflow.insert_rule(op.rule, check_loops=False)
        else:
            result = engine.veriflow.remove_rule(op.rid, check_loops=False)
        counts.append(result.num_ecs)
    _CACHE[_NAME] = counts
    return counts


def test_appendix_c_report():
    counts = _ec_counts()
    print_report(render_table(
        ("Data set", "Updates", "Median ECs", "p99 ECs", "Max ECs"),
        [(_NAME, len(counts), int(percentile(counts, 50)),
          int(percentile(counts, 99)), max(counts))],
        title="Appendix C — affected ECs per update (Veriflow-RI; paper "
              "saw a max of 319,681 on RF 1755)"))
    assert counts


def test_max_far_exceeds_median():
    counts = _ec_counts()
    median = percentile(counts, 50)
    assert max(counts) >= 5 * max(median, 1), (
        f"expected a heavy EC tail, got median={median} max={max(counts)}")


def test_deltanet_update_work_bounded_by_interval_atoms():
    """Delta-net only walks the updated rule's own atoms (Fig. 4b)."""
    from repro.core.deltanet import DeltaNet

    net = DeltaNet()
    worst_atoms = 0
    for op in dataset(_NAME).ops:
        if not op.is_insert:
            net.remove_rule(op.rid)
            continue
        net.insert_rule(op.rule)
        worst_atoms = max(worst_atoms,
                          sum(1 for _ in net.atoms.atoms_in(op.rule.lo,
                                                            op.rule.hi)))
    assert worst_atoms <= net.atoms.num_ids_allocated
    print_report(f"Delta-net max atoms touched per update: {worst_atoms} "
                 f"(of {net.atoms.num_ids_allocated} allocated)")
