"""Ablation A2 — atomic predicates (Yang & Lam) vs Delta-net atoms (§5).

Yang & Lam compute the *minimal* set of packet equivalence classes by
quadratic partition refinement; Delta-net accepts a non-minimal atom set
in exchange for quasi-linear incremental maintenance.  This ablation
measures both on growing rule counts.

Shape targets:
  * minimality: APV's class count <= Delta-net's atom count everywhere,
  * scalability: Delta-net's per-rule insertion cost grows far slower
    than APV's per-rule recomputation cost (quasi-linear vs quadratic).
"""

import random
import time

import pytest

from repro.analysis.tables import render_table
from repro.apv.atomic import atomic_predicates
from repro.core.deltanet import DeltaNet
from repro.core.intervals import IntervalSet
from repro.core.rules import Rule

from benchmarks.common import BENCH_SCALE, print_report

_SIZES = tuple(max(20, int(n * BENCH_SCALE)) for n in (50, 100, 200))
_CACHE = {}


def _rules(count):
    rng = random.Random(count)
    rules = []
    for rid in range(count):
        plen = rng.randint(2, 16)
        span = 1 << (16 - plen)
        lo = rng.randrange(1 << 16) & ~(span - 1)
        rules.append(Rule.forward(rid, lo, lo + span, rid,
                                  f"s{rng.randrange(8)}", f"s{rng.randrange(8)}"))
    return rules


def _measure(count):
    if count in _CACHE:
        return _CACHE[count]
    rules = _rules(count)

    start = time.perf_counter()
    net = DeltaNet(width=16)
    for rule in rules:
        net.insert_rule(rule)
    deltanet_time = time.perf_counter() - start

    start = time.perf_counter()
    partition = atomic_predicates(
        [IntervalSet([(r.lo, r.hi)]) for r in rules], width=16)
    apv_time = time.perf_counter() - start

    _CACHE[count] = (net.num_atoms, len(partition), deltanet_time, apv_time)
    return _CACHE[count]


def test_ablation_apv_report():
    rows = []
    for count in _SIZES:
        atoms, classes, d_time, a_time = _measure(count)
        rows.append((count, atoms, classes,
                     f"{d_time * 1e3:.1f}", f"{a_time * 1e3:.1f}"))
    print_report(render_table(
        ("Rules", "Delta-net atoms", "APV classes",
         "Delta-net ms (incremental)", "APV ms (one-shot)"),
        rows, title="Ablation — atoms vs minimal atomic predicates"))
    assert rows


@pytest.mark.parametrize("count", _SIZES)
def test_apv_is_minimal(count):
    atoms, classes, _d, _a = _measure(count)
    assert classes <= atoms


def test_deltanet_scales_better():
    """Growth-rate comparison between the smallest and largest size."""
    small, large = _SIZES[0], _SIZES[-1]
    _a1, _c1, d_small, a_small = _measure(small)
    _a2, _c2, d_large, a_large = _measure(large)
    deltanet_growth = d_large / max(d_small, 1e-9)
    apv_growth = a_large / max(a_small, 1e-9)
    assert deltanet_growth < apv_growth, (
        f"Delta-net growth {deltanet_growth:.1f}x should be below APV "
        f"growth {apv_growth:.1f}x over {small}->{large} rules")
