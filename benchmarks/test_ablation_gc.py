"""Ablation A1a — atom garbage collection (§3.2.2 remark).

The paper omits GC from Algorithm 2 but notes unused atom identifiers
"could be reclaimed".  This ablation measures what GC buys on
removal-heavy workloads: fewer live atoms (bounded state) at some
per-removal cost.

Shape targets:
  * with GC, live atoms after a full insert+remove replay return to 1,
  * without GC, dead atoms accumulate,
  * labels stay semantically identical either way (asserted via replay
    equivalence on final rule counts and loop verdicts).
"""

import pytest

from repro.analysis.tables import render_table
from repro.replay.engine import DeltaNetEngine, replay

from benchmarks.common import dataset, microseconds, print_report

_NAMES = ("Berkeley", "Airtel1")
_CACHE = {}


def _run(name, gc):
    key = (name, gc)
    if key not in _CACHE:
        engine = DeltaNetEngine(gc=gc)
        result = replay(dataset(name).ops, engine)
        _CACHE[key] = (engine, result)
    return _CACHE[key]


def test_ablation_gc_report():
    rows = []
    for name in _NAMES:
        for gc in (False, True):
            engine, result = _run(name, gc)
            rows.append((
                name, "on" if gc else "off",
                engine.deltanet.num_atoms,
                engine.deltanet.atoms.num_ids_allocated,
                f"{microseconds(result.summary()['mean']):.1f}",
            ))
    print_report(render_table(
        ("Data set", "GC", "Live atoms (end)", "Ids allocated",
         "Mean us/op"),
        rows, title="Ablation — atom garbage collection"))
    assert rows


@pytest.mark.parametrize("name", _NAMES)
def test_gc_reclaims_atoms_on_removal_heavy_replay(name):
    engine_gc, _ = _run(name, True)
    engine_plain, _ = _run(name, False)
    assert engine_gc.deltanet.num_atoms <= engine_plain.deltanet.num_atoms


def test_gc_full_teardown_returns_to_single_atom():
    engine, _result = _run("Berkeley", True)
    # Berkeley removes every inserted rule; GC must reclaim everything.
    assert engine.deltanet.num_rules == 0
    assert engine.deltanet.num_atoms == 1


@pytest.mark.parametrize("name", _NAMES)
def test_gc_does_not_change_loop_verdicts(name):
    _e1, r1 = _run(name, False)
    _e2, r2 = _run(name, True)
    assert r1.loops_found == r2.loops_found
