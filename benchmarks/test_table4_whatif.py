"""Experiment E4 — Table 4: "what if" link-failure queries.

For a consistent data plane built from each dataset's insertions, answer
for every link: which packets and parts of the network are affected if
this link fails?  Delta-net reads its label map (plus a subgraph
restriction); Veriflow-RI must recompute equivalence classes and build a
forwarding graph per EC.

Shape targets (Table 4):
  * Delta-net's average query time is well below Veriflow-RI's on every
    dataset (paper: 10x to several orders of magnitude),
  * adding loop checking dominates Delta-net's query time (the paper's
    "+Loops" column vs the plain query).
"""

import time

import pytest

from repro.analysis.tables import render_table
from repro.checkers.whatif import link_failure_impact

from benchmarks.common import (
    BASELINE_DATASET_NAMES, dataset, insert_only_deltanet,
    insert_only_veriflow, print_report,
)

_RESULTS = {}


def _run_queries(name):
    if name in _RESULTS:
        return _RESULTS[name]
    deltanet = insert_only_deltanet(name).deltanet
    veriflow = insert_only_veriflow(name).veriflow  # the VeriflowRI instance
    links = list(deltanet.label)

    start = time.perf_counter()
    for link in links:
        link_failure_impact(deltanet, link, check_loops=False)
    delta_plain = (time.perf_counter() - start) / len(links)

    start = time.perf_counter()
    for link in links:
        link_failure_impact(deltanet, link, check_loops=True)
    delta_loops = (time.perf_counter() - start) / len(links)

    start = time.perf_counter()
    for link in links:
        veriflow.whatif_link_failure(link)
    veriflow_avg = (time.perf_counter() - start) / len(links)

    _RESULTS[name] = (len(links), veriflow_avg, delta_plain, delta_loops)
    return _RESULTS[name]


def test_table4_report():
    rows = []
    for name in BASELINE_DATASET_NAMES:
        queries, veriflow_avg, delta_plain, delta_loops = _run_queries(name)
        rows.append((
            name,
            dataset(name).num_inserts,
            queries,
            f"{veriflow_avg * 1e3:.3f}",
            f"{delta_plain * 1e3:.3f}",
            f"{delta_loops * 1e3:.3f}",
            f"{veriflow_avg / max(delta_plain, 1e-12):.1f}x",
        ))
    print_report(render_table(
        ("Data plane", "Rules", "Queries", "Veriflow-RI ms",
         "Delta-net ms", "+Loops ms", "speedup"),
        rows,
        title="Table 4 — what-if link-failure queries (average per query)"))
    assert rows


@pytest.mark.parametrize("name", BASELINE_DATASET_NAMES)
def test_deltanet_beats_veriflow(name):
    _q, veriflow_avg, delta_plain, _delta_loops = _run_queries(name)
    assert delta_plain < veriflow_avg, (
        f"{name}: Delta-net ({delta_plain:.6f}s) should answer what-if "
        f"queries faster than Veriflow-RI ({veriflow_avg:.6f}s)")


@pytest.mark.parametrize("name", BASELINE_DATASET_NAMES)
def test_loop_check_dominates_deltanet_query(name):
    """Paper: "Delta-net's processing time is dominated by the property
    check" — the +Loops column must exceed the plain query time."""
    _q, _veriflow_avg, delta_plain, delta_loops = _run_queries(name)
    assert delta_loops >= delta_plain


@pytest.mark.parametrize("name", ["Airtel1"])
def test_benchmark_whatif_sweep(benchmark, name):
    deltanet = insert_only_deltanet(name).deltanet
    links = list(deltanet.label)

    def sweep():
        return [link_failure_impact(deltanet, link) for link in links]

    impacts = benchmark(sweep)
    assert len(impacts) == len(links)
