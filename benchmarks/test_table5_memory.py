"""Experiment E5 — Table 5 / Appendix D: memory usage.

Deep-measures the verifier state of Delta-net vs Veriflow-RI after
building the same insert-only data plane.

Shape target (Table 5): Veriflow-RI uses less memory than Delta-net on
every dataset (the paper reports 5-7x less) — the price Delta-net pays
for keeping network-wide flow state.
"""

import pytest

from repro.analysis.memory import deep_size, format_bytes
from repro.analysis.tables import render_table

from benchmarks.common import (
    BASELINE_DATASET_NAMES, dataset, insert_only_deltanet,
    insert_only_veriflow, print_report,
)


def _sizes(name):
    deltanet_bytes = deep_size(insert_only_deltanet(name).deltanet)
    veriflow_bytes = deep_size(insert_only_veriflow(name).veriflow)
    return deltanet_bytes, veriflow_bytes


def test_table5_report():
    rows = []
    for name in BASELINE_DATASET_NAMES:
        deltanet_bytes, veriflow_bytes = _sizes(name)
        rows.append((
            name,
            dataset(name).num_inserts,
            format_bytes(veriflow_bytes),
            format_bytes(deltanet_bytes),
            f"{deltanet_bytes / max(veriflow_bytes, 1):.1f}x",
        ))
    print_report(render_table(
        ("Data set", "Rules", "Veriflow-RI", "Delta-net", "ratio"),
        rows,
        title="Table 5 — memory usage (paper reports Delta-net 5-7x larger)"))
    assert rows


@pytest.mark.parametrize("name", BASELINE_DATASET_NAMES)
def test_veriflow_uses_less_memory(name):
    deltanet_bytes, veriflow_bytes = _sizes(name)
    assert veriflow_bytes < deltanet_bytes, (
        f"{name}: Veriflow-RI ({veriflow_bytes}) should be smaller than "
        f"Delta-net ({deltanet_bytes})")


@pytest.mark.parametrize("name", ["Airtel1"])
def test_benchmark_memory_measurement(benchmark, name):
    deltanet = insert_only_deltanet(name).deltanet
    size = benchmark.pedantic(lambda: deep_size(deltanet),
                              rounds=1, iterations=1)
    assert size > 0
