"""Ablation A5 — Chen's optimization: trie vs interval-tree index (§5).

Both Veriflow variants run the identical per-update algorithm; only the
rule index differs (binary trie vs augmented interval tree).  Shape
targets:

  * identical verification results on the same replay,
  * the interval tree needs no per-bit node chains, so its index state
    is smaller than the trie's on prefix-heavy workloads.
"""

import pytest

from repro.analysis.memory import deep_size, format_bytes
from repro.analysis.tables import render_table
from repro.replay.engine import replay
from repro.veriflow.chen import VeriflowChen
from repro.veriflow.verifier import VeriflowRI

from benchmarks.common import dataset, microseconds, print_report

_NAME = "Berkeley"
_CACHE = {}


class _ChenEngine:
    def __init__(self):
        self.veriflow = VeriflowChen()

    def process(self, op):
        if op.is_insert:
            result = self.veriflow.insert_rule(op.rule)
        else:
            result = self.veriflow.remove_rule(op.rid)
        return len(result.loops)


class _TrieEngine:
    def __init__(self):
        self.veriflow = VeriflowRI()

    def process(self, op):
        if op.is_insert:
            result = self.veriflow.insert_rule(op.rule)
        else:
            result = self.veriflow.remove_rule(op.rid)
        return len(result.loops)


def _run():
    if "results" not in _CACHE:
        ops = dataset(_NAME).ops
        trie_engine = _TrieEngine()
        chen_engine = _ChenEngine()
        trie_result = replay(ops, trie_engine, engine_name="trie")
        chen_result = replay(ops, chen_engine, engine_name="interval-tree")
        _CACHE["results"] = (trie_engine, chen_engine, trie_result,
                             chen_result)
    return _CACHE["results"]


def test_ablation_chen_report():
    trie_engine, chen_engine, trie_result, chen_result = _run()
    # Rebuild insert-only state for a fair index-size comparison.
    trie_state = VeriflowRI()
    chen_state = VeriflowChen()
    for op in dataset(_NAME).ops:
        if op.is_insert:
            trie_state.insert_rule(op.rule, check_loops=False)
            chen_state.insert_rule(op.rule, check_loops=False)
    rows = [
        ("binary trie", f"{microseconds(trie_result.summary()['mean']):.1f}",
         trie_result.loops_found, format_bytes(deep_size(trie_state))),
        ("interval tree (Chen)",
         f"{microseconds(chen_result.summary()['mean']):.1f}",
         chen_result.loops_found, format_bytes(deep_size(chen_state))),
    ]
    print_report(render_table(
        ("Index", "Mean us/op", "Loops", "State size"),
        rows, title=f"Ablation — Veriflow index structure on {_NAME}"))
    assert rows


def test_same_verification_outcome():
    _te, _ce, trie_result, chen_result = _run()
    assert trie_result.loops_found == chen_result.loops_found
    assert trie_result.num_ops == chen_result.num_ops


def test_index_size_tradeoff_by_workload_shape():
    """The trie wins on prefix-heavy workloads (chains shared across the
    few unique prefixes); the interval tree wins on diverse *non-prefix*
    intervals, which the trie must store as multi-prefix CIDR covers
    with deep per-bit chains."""
    import random

    from repro.core.rules import Rule

    rng = random.Random(99)
    trie_state = VeriflowRI(width=32)
    chen_state = VeriflowChen(width=32)
    for rid in range(400):
        lo = rng.randrange(0, (1 << 32) - (1 << 20))
        hi = lo + rng.randrange(3, 1 << 20)  # arbitrary, rarely a prefix
        rule = Rule.forward(rid, lo, hi, rid, f"s{rid % 8}",
                            f"s{(rid + 1) % 8}")
        trie_state.insert_rule(rule, check_loops=False)
        chen_state.insert_rule(rule, check_loops=False)
    assert deep_size(chen_state) < deep_size(trie_state)
