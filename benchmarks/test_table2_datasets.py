"""Experiment E1 — Table 2: the eight evaluation datasets.

Regenerates every dataset and reports its metrics (nodes, links,
operations) next to the paper's, then benchmarks dataset generation
itself.  Shape targets: all eight build; synthetic sets have ops == 2 x
rules; 4Switch is insert-only; Airtel sets contain failure churn.
"""

import pytest

from repro.analysis.tables import render_table
from repro.datasets.builders import PAPER_TABLE2, build_dataset

from benchmarks.common import BENCH_SCALE, DATASET_NAMES, dataset, print_report


def test_table2_report():
    rows = []
    for name in DATASET_NAMES:
        built = dataset(name)
        paper_nodes, paper_links, paper_ops = PAPER_TABLE2[name]
        rows.append((name, built.num_nodes, paper_nodes, built.num_links,
                     paper_links, built.num_ops, f"{paper_ops:.3g}"))
    print_report(render_table(
        ("Data set", "Nodes", "(paper)", "Links", "(paper)",
         "Operations", "(paper)"),
        rows,
        title=f"Table 2 — datasets (scale={BENCH_SCALE})"))
    assert len(rows) == 8


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_dataset_properties(name):
    built = dataset(name)
    assert built.num_ops > 0
    inserts = built.num_inserts
    if name in ("Berkeley", "INET", "RF-1755", "RF-3257", "RF-6461"):
        # §4.2.1: inserts then removals => ops == 2 x rules.
        assert built.num_ops == 2 * inserts
    elif name == "4Switch":
        # §4.2.2: "all of the operations in the 4Switch data set are rule
        # insertions."
        assert built.num_ops == inserts
    else:
        # Airtel: initial programming + balanced failure/recovery churn.
        assert 0 < built.num_ops - inserts < inserts


@pytest.mark.parametrize("name", ["Berkeley", "Airtel1", "4Switch"])
def test_benchmark_dataset_generation(benchmark, name):
    built = benchmark.pedantic(
        lambda: build_dataset(name, scale=BENCH_SCALE),
        rounds=1, iterations=1)
    assert built.num_ops == dataset(name).num_ops
